"""Gate a ``bench_kernels.py`` run against the checked-in baseline.

Fails (exit 1) when any shared benchmark is more than ``--tolerance``
slower than ``BENCH_baseline.json``, or when the stateful batch kernel's
speedup over the reference replay falls below ``--min-speedup`` (the
paper-repro acceptance bar is 3x on a million-op trace).  Wall-clock
numbers move with the machine, so the baseline is only meaningful on
comparable hardware; re-baseline with::

    python benchmarks/bench_kernels.py --out benchmarks/BENCH_baseline.json

With ``--serving FILE`` it instead gates a ``bench_serving.py`` report
(the serving data plane): binary+coalesced sustained throughput must be
>= ``--min-serving-speedup`` over the JSON serving path at >=
``--min-serving-ops`` total ops, session group commit must beat
per-batch journaled apply, and the p99 query latency / peak RSS fields
must be recorded.  All serving gates are same-run ratios, so they hold
on any machine::

    python benchmarks/bench_serving.py --out benchmarks/BENCH_serving.json
    python benchmarks/check_regression.py --serving benchmarks/BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.20
DEFAULT_MIN_SPEEDUP = 3.0
DEFAULT_MIN_LS_ALL_SPEEDUP = 4.0
DEFAULT_MIN_WRITE_HEAVY_SPEEDUP = 5.0
DEFAULT_MIN_WRITE_HEAVY_ALL_SPEEDUP = 4.0
DEFAULT_MIN_MULTIFRONTIER_SPEEDUP = 5.0
DEFAULT_MIN_CLEANING_SPEEDUP = 5.0
DEFAULT_MIN_INGEST_SPEEDUP = 3.0
DEFAULT_MIN_WARM_SPEEDUP = 10.0
DEFAULT_MIN_FIG11_SPEEDUP = 5.0
DEFAULT_MIN_CACHE_SWEEP_SPEEDUP = 10.0
DEFAULT_MIN_JOBS_SCALING_SPEEDUP = 2.5
DEFAULT_MIN_COLD_JOBS_SPEEDUP = 1.8
# Pool overhead bound, not a speedup: cold parallel ingestion on a 1-core
# container cannot beat serial, but it must not fall far behind it either
# (a drop means workers re-did per-workload ingest work).
DEFAULT_MIN_INGEST_PARALLEL_RATIO = 0.6
# Serving data plane (bench_serving.py): the PR 9 acceptance bar is 5x
# sustained apply throughput over the JSON serving path at 1M ops.  The
# group-commit floor is deliberately modest: fsync cost varies wildly
# across filesystems (1.3-1.5x on fast local disks, far more when fsync
# is honest), so the gate asserts a real win, not a particular one.
DEFAULT_MIN_SERVING_SPEEDUP = 5.0
DEFAULT_MIN_GROUP_COMMIT_SPEEDUP = 1.15
DEFAULT_MIN_SERVING_OPS = 1_000_000

_SIDES = (
    "reference", "batch", "sweep", "columnar", "warm_store", "fast",
    "cold_jobs4", "warm_jobs1", "warm_jobs4", "jobs4",
)


def _flatten(results: dict) -> dict:
    """``{benchmark: {side: {...}}}`` -> ``{path: seconds}``."""
    flat = {}
    for name, pair in results.items():
        for side in _SIDES:
            if side in pair:
                flat[f"{name}.{side}"] = pair[side]["seconds"]
    return flat


def check(
    current: dict,
    baseline: dict,
    tolerance: float,
    min_speedup: float,
    min_ingest_speedup: float = DEFAULT_MIN_INGEST_SPEEDUP,
    min_warm_speedup: float = DEFAULT_MIN_WARM_SPEEDUP,
    min_fig11_speedup: float = DEFAULT_MIN_FIG11_SPEEDUP,
    min_cache_sweep_speedup: float = DEFAULT_MIN_CACHE_SWEEP_SPEEDUP,
    min_jobs_scaling_speedup: float = DEFAULT_MIN_JOBS_SCALING_SPEEDUP,
    min_ls_all_speedup: float = DEFAULT_MIN_LS_ALL_SPEEDUP,
    min_write_heavy_speedup: float = DEFAULT_MIN_WRITE_HEAVY_SPEEDUP,
    min_write_heavy_all_speedup: float = DEFAULT_MIN_WRITE_HEAVY_ALL_SPEEDUP,
    min_cold_jobs_speedup: float = DEFAULT_MIN_COLD_JOBS_SPEEDUP,
    min_ingest_parallel_ratio: float = DEFAULT_MIN_INGEST_PARALLEL_RATIO,
    min_multifrontier_speedup: float = DEFAULT_MIN_MULTIFRONTIER_SPEEDUP,
    min_cleaning_speedup: float = DEFAULT_MIN_CLEANING_SPEEDUP,
):
    """Yield ``(ok, message)`` per check, comparing like with like."""
    if current.get("ops") != baseline.get("ops"):
        yield False, (
            f"op counts differ (current {current.get('ops')}, baseline "
            f"{baseline.get('ops')}); timings are not comparable"
        )
        return

    current_flat = _flatten(current.get("results", {}))
    baseline_flat = _flatten(baseline.get("results", {}))
    for name in sorted(set(current_flat) & set(baseline_flat)):
        now, then = current_flat[name], baseline_flat[name]
        ratio = now / then if then else float("inf")
        ok = ratio <= 1.0 + tolerance
        yield ok, (
            f"{name}: {now:.2f}s vs baseline {then:.2f}s "
            f"({(ratio - 1) * 100:+.0f}%, limit +{tolerance * 100:.0f}%)"
        )

    ls_batch = current.get("results", {}).get("replay_ls", {}).get("batch", {})
    speedup = ls_batch.get("speedup_vs_reference", 0.0)
    yield speedup >= min_speedup, (
        f"replay_ls batch speedup {speedup:.2f}x "
        f"(required >= {min_speedup:.1f}x)"
    )

    # Kernel-coverage gates: the all-techniques and write-heavy replays
    # exercise the extent-map write path (batched frontier allocation,
    # overlay flushes) that the read-heavy headline barely touches.
    # They engage only when the report carries the entries.
    for name, floor, label in (
        ("replay_ls_all", min_ls_all_speedup, "all techniques"),
        ("replay_ls_write_heavy", min_write_heavy_speedup, "write-heavy"),
        (
            "replay_ls_write_heavy_all",
            min_write_heavy_all_speedup,
            "write-heavy, all techniques",
        ),
        ("replay_multifrontier", min_multifrontier_speedup, "multi-frontier"),
        ("replay_cleaning", min_cleaning_speedup, "zoned cleaning"),
    ):
        entry = current.get("results", {}).get(name, {}).get("batch")
        if entry is not None:
            speedup = entry.get("speedup_vs_reference", 0.0)
            yield speedup >= floor, (
                f"{name} batch ({label}) speedup {speedup:.2f}x "
                f"(required >= {floor:.1f}x)"
            )

    # Sweep-engine gates: multi-config (fig11-style) replay and the
    # 16-point cache-capacity ablation, each vs the per-request reference
    # path.  Like the ingest gates, they engage only when the report
    # carries the entries.
    for name, floor, label in (
        ("sweep_fig11", min_fig11_speedup, "multi-config replay"),
        ("sweep_cache_ablation", min_cache_sweep_speedup, "cache-size ablation"),
    ):
        entry = current.get("results", {}).get(name, {}).get("sweep")
        if entry is not None:
            speedup = entry.get("speedup_vs_reference", 0.0)
            yield speedup >= floor, (
                f"{name} sweep ({label}) speedup {speedup:.2f}x "
                f"(required >= {floor:.1f}x)"
            )

    # End-to-end exhibit regeneration over warm memory-mapped stores must
    # beat the best storeless configuration; the floor holds on a 1-core
    # container because the win is store reuse, not parallelism.
    jobs_warm = current.get("results", {}).get("jobs_scaling", {}).get("warm_jobs4")
    if jobs_warm is not None:
        speedup = jobs_warm.get("speedup_vs_reference", 0.0)
        yield speedup >= min_jobs_scaling_speedup, (
            f"jobs_scaling warm_jobs4 (exhibits over warm stores) speedup "
            f"{speedup:.2f}x (required >= {min_jobs_scaling_speedup:.1f}x)"
        )

    # Cold-start: the first parallel run over empty stores must already
    # beat the storeless serial reference — ingest-first scheduling pays
    # each workload's synthesis/recording once instead of per worker.
    jobs_cold = current.get("results", {}).get("jobs_scaling", {}).get("cold_jobs4")
    if jobs_cold is not None:
        speedup = jobs_cold.get("speedup_vs_reference", 0.0)
        yield speedup >= min_cold_jobs_speedup, (
            f"jobs_scaling cold_jobs4 (cold parallel, empty stores) speedup "
            f"{speedup:.2f}x (required >= {min_cold_jobs_speedup:.1f}x)"
        )

    ingest_parallel = current.get("results", {}).get("ingest_cold_parallel", {})
    jobs_side = next(
        (
            side
            for side in ingest_parallel
            if side.startswith("jobs") and isinstance(ingest_parallel[side], dict)
        ),
        None,
    )
    if jobs_side is not None:
        ratio = ingest_parallel[jobs_side].get("speedup_vs_reference", 0.0)
        yield ratio >= min_ingest_parallel_ratio, (
            f"ingest_cold_parallel {jobs_side} vs serial ratio {ratio:.2f}x "
            f"(required >= {min_ingest_parallel_ratio:.1f}x; bounds pool "
            "overhead / duplicated ingest work)"
        )

    # Ingestion gates apply only when the report carries the entries (older
    # reports without the ingest benchmark still pass their own checks).
    ingest = current.get("results", {}).get("ingest_msr", {})
    for side, floor, label in (
        ("columnar", min_ingest_speedup, "cold parse+analyze"),
        ("warm_store", min_warm_speedup, "warm store"),
    ):
        if side in ingest:
            speedup = ingest[side].get("speedup_vs_reference", 0.0)
            yield speedup >= floor, (
                f"ingest_msr {side} ({label}) speedup {speedup:.2f}x "
                f"(required >= {floor:.1f}x)"
            )


def check_serving(
    report: dict,
    min_serving_speedup: float = DEFAULT_MIN_SERVING_SPEEDUP,
    min_group_commit_speedup: float = DEFAULT_MIN_GROUP_COMMIT_SPEEDUP,
    min_serving_ops: int = DEFAULT_MIN_SERVING_OPS,
):
    """Yield ``(ok, message)`` per serving-data-plane check."""
    serving = report.get("results", {}).get("serving", {})
    durability = report.get("results", {}).get("durability", {})
    binary = serving.get("binary", {})

    ops = int(serving.get("ops", 0))
    yield ops >= min_serving_ops, (
        f"serving ops {ops} (required >= {min_serving_ops}; smaller runs "
        "don't amortize worker startup and prove nothing)"
    )

    speedup = binary.get("speedup_vs_reference", 0.0)
    yield speedup >= min_serving_speedup, (
        f"serving binary+coalesced speedup {speedup:.2f}x over the JSON "
        f"path (required >= {min_serving_speedup:.1f}x)"
    )

    group = durability.get("group_commit", {})
    group_speedup = group.get("speedup_vs_reference", 0.0)
    yield group_speedup >= min_group_commit_speedup, (
        f"durability group-commit speedup {group_speedup:.2f}x over "
        f"per-batch journaled apply (required >= "
        f"{min_group_commit_speedup:.2f}x)"
    )

    resyncs = binary.get("resyncs")
    yield resyncs == 0, (
        f"binary side resyncs {resyncs} (required 0: sheds under the "
        "bench's own window mean misconfigured queue depths)"
    )

    for field, where, label in (
        ("apply_p99_ms", binary, "binary p99 apply latency"),
        ("query_p99_ms", binary, "binary p99 live-query latency"),
        ("peak_rss_mib", report, "peak RSS"),
    ):
        value = where.get(field)
        ok = isinstance(value, (int, float)) and value > 0
        yield ok, (
            f"{label} recorded ({field}={value})"
            if ok
            else f"{label} missing from report ({field}={value!r})"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current", nargs="?", default="benchmarks/BENCH_core.json", metavar="FILE"
    )
    parser.add_argument(
        "--baseline", default="benchmarks/BENCH_baseline.json", metavar="FILE"
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP)
    parser.add_argument(
        "--min-ingest-speedup", type=float, default=DEFAULT_MIN_INGEST_SPEEDUP
    )
    parser.add_argument(
        "--min-warm-speedup", type=float, default=DEFAULT_MIN_WARM_SPEEDUP
    )
    parser.add_argument(
        "--min-fig11-speedup", type=float, default=DEFAULT_MIN_FIG11_SPEEDUP
    )
    parser.add_argument(
        "--min-cache-sweep-speedup",
        type=float,
        default=DEFAULT_MIN_CACHE_SWEEP_SPEEDUP,
    )
    parser.add_argument(
        "--min-jobs-scaling-speedup",
        type=float,
        default=DEFAULT_MIN_JOBS_SCALING_SPEEDUP,
    )
    parser.add_argument(
        "--min-ls-all-speedup", type=float, default=DEFAULT_MIN_LS_ALL_SPEEDUP
    )
    parser.add_argument(
        "--min-write-heavy-speedup",
        type=float,
        default=DEFAULT_MIN_WRITE_HEAVY_SPEEDUP,
    )
    parser.add_argument(
        "--min-write-heavy-all-speedup",
        type=float,
        default=DEFAULT_MIN_WRITE_HEAVY_ALL_SPEEDUP,
    )
    parser.add_argument(
        "--min-cold-jobs-speedup",
        type=float,
        default=DEFAULT_MIN_COLD_JOBS_SPEEDUP,
    )
    parser.add_argument(
        "--min-ingest-parallel-ratio",
        type=float,
        default=DEFAULT_MIN_INGEST_PARALLEL_RATIO,
    )
    parser.add_argument(
        "--min-multifrontier-speedup",
        type=float,
        default=DEFAULT_MIN_MULTIFRONTIER_SPEEDUP,
    )
    parser.add_argument(
        "--min-cleaning-speedup",
        type=float,
        default=DEFAULT_MIN_CLEANING_SPEEDUP,
    )
    parser.add_argument(
        "--serving",
        default=None,
        metavar="FILE",
        help="gate a bench_serving.py report instead of the kernel baseline",
    )
    parser.add_argument(
        "--min-serving-speedup", type=float, default=DEFAULT_MIN_SERVING_SPEEDUP
    )
    parser.add_argument(
        "--min-group-commit-speedup",
        type=float,
        default=DEFAULT_MIN_GROUP_COMMIT_SPEEDUP,
    )
    parser.add_argument(
        "--min-serving-ops", type=int, default=DEFAULT_MIN_SERVING_OPS
    )
    args = parser.parse_args(argv)

    if args.serving is not None:
        try:
            report = json.loads(Path(args.serving).read_text())
        except OSError as exc:
            print(f"no serving results ({exc}); run bench_serving.py first")
            return 1
        failed = 0
        for ok, message in check_serving(
            report,
            min_serving_speedup=args.min_serving_speedup,
            min_group_commit_speedup=args.min_group_commit_speedup,
            min_serving_ops=args.min_serving_ops,
        ):
            print(("ok   " if ok else "FAIL ") + message)
            failed += 0 if ok else 1
        if failed:
            print(f"{failed} serving regression check(s) failed")
            return 1
        print("all serving regression checks passed")
        return 0

    try:
        current = json.loads(Path(args.current).read_text())
    except OSError as exc:
        print(f"no current results ({exc}); run bench_kernels.py first")
        return 1
    try:
        baseline = json.loads(Path(args.baseline).read_text())
    except OSError as exc:
        print(f"no baseline ({exc}); nothing to gate against")
        return 1

    failed = 0
    for ok, message in check(
        current,
        baseline,
        args.tolerance,
        args.min_speedup,
        min_ingest_speedup=args.min_ingest_speedup,
        min_warm_speedup=args.min_warm_speedup,
        min_fig11_speedup=args.min_fig11_speedup,
        min_cache_sweep_speedup=args.min_cache_sweep_speedup,
        min_jobs_scaling_speedup=args.min_jobs_scaling_speedup,
        min_ls_all_speedup=args.min_ls_all_speedup,
        min_write_heavy_speedup=args.min_write_heavy_speedup,
        min_write_heavy_all_speedup=args.min_write_heavy_all_speedup,
        min_cold_jobs_speedup=args.min_cold_jobs_speedup,
        min_ingest_parallel_ratio=args.min_ingest_parallel_ratio,
        min_multifrontier_speedup=args.min_multifrontier_speedup,
        min_cleaning_speedup=args.min_cleaning_speedup,
    ):
        print(("ok   " if ok else "FAIL ") + message)
        failed += 0 if ok else 1
    if failed:
        print(f"{failed} regression check(s) failed")
        return 1
    print("all regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
