"""Benchmark: regenerate the Fig. 6 defragmentation walkthrough."""


def test_bench_fig6(exhibit_runner):
    data = exhibit_runner("fig6", scale=1.0)
    assert data["without_defrag"]["rd_2_5_first"]["read_seeks"] == 4
    assert data["with_defrag"]["rd_2_5_again"]["read_seeks"] <= 1
    assert data["with_defrag"]["rd_1_2"]["read_seeks"] == 2
