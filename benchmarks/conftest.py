"""Shared helpers for the benchmark suite.

Every exhibit benchmark times one full regeneration of its table/figure at
a reduced workload scale (the shapes are scale-stable; the paper-scale run
is `python -m repro.experiments all`).  `pedantic` with a single round
keeps the whole suite to a couple of minutes.
"""

import pytest

from repro.experiments.registry import run_exhibit

BENCH_SCALE = 0.2
BENCH_SEED = 42


@pytest.fixture
def exhibit_runner(benchmark):
    """Return a callable that benchmarks one exhibit and returns its data."""

    def run(name: str, scale: float = BENCH_SCALE):
        return benchmark.pedantic(
            run_exhibit,
            args=(name,),
            kwargs={"seed": BENCH_SEED, "scale": scale, "out_dir": None},
            rounds=1,
            iterations=1,
        )

    return run
