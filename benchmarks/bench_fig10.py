"""Benchmark: regenerate Fig. 10 (fragment popularity / cache sizing)."""


def test_bench_fig10(exhibit_runner):
    data = exhibit_runner("fig10")
    assert len(data) == 8
    for name, row in data.items():
        assert row["fragments"] > 0, name
        # Popularity is skewed: half the accesses need less RAM than all.
        assert row["cache_mib_for_50pct"] <= row["total_mib"], name
