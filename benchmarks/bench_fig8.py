"""Benchmark: regenerate Fig. 8 (mis-ordered write rates)."""


def test_bench_fig8(exhibit_runner):
    data = exhibit_runner("fig8")
    assert len(data) == 21
    # The paper's headline offenders sit near 1-in-20 / 1-in-25.
    assert data["src2_2"] > 0.01
    assert data["w106"] > 0.01
