"""Benchmark: regenerate Fig. 2 (NoLS vs LS seek counts)."""


def test_bench_fig2(exhibit_runner):
    data = exhibit_runner("fig2")
    assert len(data) == 21
    # Write seeks must collapse under log-structured translation.
    for name, row in data.items():
        if row["nols"]["write_seeks"] > 100:
            assert row["ls"]["write_seeks"] < row["nols"]["write_seeks"] / 5, name
