"""Benchmark: regenerate Fig. 4 (access-distance CDFs)."""


def test_bench_fig4(exhibit_runner):
    data = exhibit_runner("fig4")
    assert set(data) == {"src2_2", "usr_0", "w84", "w64"}
    # LS spreads seek distances: a smaller share stays inside the window
    # than for the original trace.  At the reduced benchmark scale the log
    # sits close enough to a small hot region that one workload (w84) can
    # invert; the full-scale shape is asserted in tests/integration.
    spread = sum(
        1
        for row in data.values()
        if row["ls_fraction_within_window"]
        <= row["nols_fraction_within_window"] + 1e-9
    )
    assert spread >= 3
