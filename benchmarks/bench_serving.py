"""Serving data-plane macro-benchmark: JSON path vs binary + coalesced.

Two full end-to-end runs of the streaming service at the same op count,
each against its own fresh daemon (real sockets, real worker processes,
real WAL fsyncs, live queries running alongside):

* ``reference`` — the PR 6 serving path at its shipped operating point:
  per-op JSON encoding, one 200-op apply per round trip (the batch size
  every PR 6 test, smoke and benchmark used), one WAL record + fsync
  per batch.
* ``binary``    — the high-throughput plane at its operating point:
  framed columnar 2000-op batches, 64-deep pipelined client windows,
  daemon-side coalescing into group commits (one fsync per group).
* ``reference_large_batch`` — informational, not gated: the JSON path
  *given* the binary plane's 2000-op batches, so the wire-format and
  pipelining wins are visible separately from the batch-size win the
  binary framing is what makes practical.

Plus a ``durability`` micro pinning the session hot path in isolation
(no sockets): per-batch journaled apply vs group-commit journaled apply
on the same ops — the group side's win is the fsync amortization, which
is exactly what ``benchmarks/bench_service.py`` measures ungated; here
it feeds the regression gate.

Writes ``benchmarks/BENCH_serving.json``; gated by
``check_regression.py --serving`` (binary >= 5x reference sustained
throughput at 1M ops, group commit >= 1.15x per-batch, p99 query
latency and peak RSS recorded).  Machine-relative ratios, so the gate holds on
any box; absolute seconds move with the hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.config import LS, LS_ALL
from repro.load.driver import TenantLoad, run_load
from repro.load.mixture import PRESET_MIXTURES
from repro.service.daemon import DaemonConfig
from repro.service.harness import DaemonThread
from repro.service.supervisor import SupervisorConfig
from repro.service.session import ReplaySession
from repro.service.wire import encode_payload
from repro.util.rss import peak_rss_mib

SCHEMA_VERSION = 1
DEFAULT_OPS = 1_000_000
#: PR 6's shipped batch size (its smoke, tests and bench_service.py all
#: stream 200-op JSON batches) vs the binary plane's framed batches.
REFERENCE_BATCH_OPS = 200
BINARY_BATCH_OPS = 2_000
WINDOW = 64
TENANTS = 2
MIXTURE = "read_hot"
#: Checkpoint cadence for both sides: high enough that the benchmark
#: measures the data plane, not checkpoint serialization (whose cost is
#: identical on both sides and covered by bench_service.py).
CHECKPOINT_INTERVAL_OPS = 250_000
DURABILITY_OPS = 20_000
DURABILITY_BATCH_OPS = 200
GROUP_BATCHES = 16


def _tenants(total_ops: int, wire: str, batch_ops: int) -> list:
    # Every tenant runs the same translator config: the benchmark compares
    # *data planes*, so cleaning policy must be held constant — mixing in
    # LS_DEFRAG would charge its defrag sweeps (a translator cost, ~3x the
    # LS apply rate on this mixture) to whichever wire happened to host it.
    per_tenant = max(total_ops // TENANTS, 1)
    return [
        TenantLoad(
            name=f"bench_{i}",
            components=PRESET_MIXTURES[MIXTURE],
            config=LS,
            total_ops=per_tenant,
            batch_ops=batch_ops,
            wire=wire,
            window=WINDOW,
            seed=17 + i,
        )
        for i in range(TENANTS)
    ]


def _serve_side(root: str, total_ops: int, wire: str, batch_ops: int) -> dict:
    server = DaemonThread(
        root,
        config=DaemonConfig(port=0, queue_depth=max(2 * WINDOW, 64)),
        supervisor_config=SupervisorConfig(
            checkpoint_interval_ops=CHECKPOINT_INTERVAL_OPS
        ),
    )
    port = server.start()
    try:
        report = run_load(
            "127.0.0.1", port, _tenants(total_ops, wire, batch_ops)
        )
    finally:
        server.stop()
    return {
        "seconds": round(report.seconds, 3),
        "ops": report.ops,
        "batch_ops": batch_ops,
        "ops_per_s": round(report.ops_per_s),
        "apply_p50_ms": round(report.apply_p50_ms, 3),
        "apply_p99_ms": round(report.apply_p99_ms, 3),
        "query_p50_ms": round(report.query_p50_ms, 3),
        "query_p99_ms": round(report.query_p99_ms, 3),
        "queries": report.queries,
        "resyncs": report.resyncs,
    }


def bench_serving(total_ops: int) -> dict:
    """End-to-end PR 6 JSON path vs binary+coalesced at ``total_ops``."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        reference = _serve_side(
            f"{tmp}/json", total_ops, "json", REFERENCE_BATCH_OPS
        )
        large = _serve_side(
            f"{tmp}/json2k", total_ops, "json", BINARY_BATCH_OPS
        )
        binary = _serve_side(
            f"{tmp}/bin", total_ops, "bin", BINARY_BATCH_OPS
        )
    binary["speedup_vs_reference"] = round(
        reference["seconds"] / binary["seconds"], 2
    )
    large["speedup_vs_reference"] = round(
        reference["seconds"] / large["seconds"], 2
    )
    return {
        "ops": total_ops,
        "reference": reference,
        "reference_large_batch": large,
        "binary": binary,
    }


def bench_durability(n_ops: int = DURABILITY_OPS) -> dict:
    """Session WAL hot path, no transport: per-batch vs group commit.

    Same ops on both sides; the group side journals ``GROUP_BATCHES``
    batches per CRC frame and fsync via ``apply_group_payload``, which
    is what the daemon's coalescer produces.
    """
    rng = np.random.default_rng(5)
    capacity = 1 << 20
    length = rng.integers(1, 33, size=n_ops).astype(np.int64)
    lba = rng.integers(0, capacity - 33, size=n_ops).astype(np.int64)
    is_read = rng.random(n_ops) < 0.5
    is_read[0] = False

    b = DURABILITY_BATCH_OPS
    n_batches = n_ops // b
    with tempfile.TemporaryDirectory(prefix="repro-durability-") as tmp:
        per_batch = ReplaySession.create(
            "per_batch", Path(tmp) / "per_batch", LS_ALL, capacity,
            checkpoint_interval_ops=10**9,
        )
        t0 = time.perf_counter()
        for i in range(n_batches):
            sl = slice(i * b, (i + 1) * b)
            per_batch.apply_batch(i + 1, is_read[sl], lba[sl], length[sl])
        per_batch_s = time.perf_counter() - t0

        grouped = ReplaySession.create(
            "grouped", Path(tmp) / "grouped", LS_ALL, capacity,
            checkpoint_interval_ops=10**9,
        )
        t0 = time.perf_counter()
        for g in range(0, n_batches, GROUP_BATCHES):
            k = min(GROUP_BATCHES, n_batches - g)
            # A group payload is per-batch payloads back to back — the
            # byte stream the daemon's coalescer hands the worker.
            payload = b"".join(
                encode_payload(
                    is_read[i * b : (i + 1) * b],
                    lba[i * b : (i + 1) * b],
                    length[i * b : (i + 1) * b],
                )
                for i in range(g, g + k)
            )
            grouped.apply_group_payload(g + 1, [b] * k, payload)
        group_s = time.perf_counter() - t0
        assert grouped.stats() == per_batch.stats(), "group commit diverged"

    n = n_batches * b
    return {
        "ops": n,
        "group_batches": GROUP_BATCHES,
        "reference": {
            "seconds": round(per_batch_s, 4),
            "ops_per_s": round(n / per_batch_s),
        },
        "group_commit": {
            "seconds": round(group_s, 4),
            "ops_per_s": round(n / group_s),
            "speedup_vs_reference": round(per_batch_s / group_s, 2),
        },
    }


def run(total_ops: int) -> dict:
    durability = bench_durability()
    serving = bench_serving(total_ops)
    return {
        "schema": SCHEMA_VERSION,
        "ops": total_ops,
        "tenants": TENANTS,
        "reference_batch_ops": REFERENCE_BATCH_OPS,
        "binary_batch_ops": BINARY_BATCH_OPS,
        "window": WINDOW,
        "checkpoint_interval_ops": CHECKPOINT_INTERVAL_OPS,
        "mixture": MIXTURE,
        "python": sys.version.split()[0],
        "results": {"serving": serving, "durability": durability},
        "peak_rss_mib": round(peak_rss_mib(), 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="benchmarks/BENCH_serving.json", metavar="FILE"
    )
    parser.add_argument(
        "--ops", type=int, default=DEFAULT_OPS, help="total ops across tenants"
    )
    args = parser.parse_args(argv)

    report = run(args.ops)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    serving = report["results"]["serving"]
    durability = report["results"]["durability"]
    print(
        f"serving    reference {serving['reference']['seconds']:8.2f}s "
        f"({serving['reference']['ops_per_s']:>8} op/s)   "
        f"json-2k {serving['reference_large_batch']['seconds']:8.2f}s "
        f"({serving['reference_large_batch']['speedup_vs_reference']:.2f}x)   "
        f"binary {serving['binary']['seconds']:8.2f}s "
        f"({serving['binary']['ops_per_s']:>8} op/s, "
        f"{serving['binary']['speedup_vs_reference']:.2f}x)"
    )
    print(
        f"durability per-batch {durability['reference']['seconds']:8.2f}s   "
        f"group-commit {durability['group_commit']['seconds']:8.2f}s "
        f"({durability['group_commit']['speedup_vs_reference']:.2f}x)"
    )
    print(
        f"binary p99: apply {serving['binary']['apply_p99_ms']:.2f}ms, "
        f"query {serving['binary']['query_p99_ms']:.2f}ms; "
        f"peak RSS {report['peak_rss_mib']:.0f} MiB"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
