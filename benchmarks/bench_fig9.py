"""Benchmark: regenerate the Fig. 9 prefetching walkthrough."""


def test_bench_fig9(exhibit_runner):
    data = exhibit_runner("fig9", scale=1.0)
    assert data["without_prefetch"]["read_seeks"] == 5
    assert data["with_prefetch"]["read_seeks"] == 3
