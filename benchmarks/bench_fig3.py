"""Benchmark: regenerate Fig. 3 (long-seek overhead over time)."""


def test_bench_fig3(exhibit_runner):
    data = exhibit_runner("fig3")
    assert set(data) == {"usr_1", "web_0", "w91", "w55"}
    for name, row in data.items():
        assert row["windows"] > 0
        assert len(row["series"]) > 0
