"""Public API surface tests.

The names a downstream user imports from ``repro`` and its subpackages
must exist, be importable, and stay consistent with ``__all__``.
"""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.extentmap",
    "repro.disk",
    "repro.cache",
    "repro.trace",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
    "repro.util",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_names(self):
        for name in (
            "synthesize_workload",
            "build_translator",
            "replay",
            "seek_amplification",
            "NOLS",
            "LS",
            "LS_DEFRAG",
            "LS_PREFETCH",
            "LS_CACHE",
            "PAPER_CONFIGS",
        ):
            assert hasattr(repro, name), name


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_every_public_item_documented(self):
        for module_name in SUBPACKAGES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                item = getattr(module, name)
                if callable(item) or isinstance(item, type):
                    assert item.__doc__, f"{module_name}.{name} lacks a docstring"
