"""Block-granular LRU cache tests."""

import pytest

from repro.cache.lru import LRUCache


def make_cache(capacity_blocks=4, block_sectors=8):
    return LRUCache(
        capacity_bytes=capacity_blocks * block_sectors * 512,
        block_sectors=block_sectors,
    )


class TestBasics:
    def test_empty_miss(self):
        cache = make_cache()
        assert not cache.contains_range(0, 8)

    def test_insert_then_hit(self):
        cache = make_cache()
        cache.insert_range(0, 8)
        assert cache.contains_range(0, 8)

    def test_partial_residency_is_miss(self):
        cache = make_cache()
        cache.insert_range(0, 8)   # block 0 only
        assert not cache.contains_range(0, 16)  # needs blocks 0 and 1

    def test_sub_range_hit(self):
        cache = make_cache()
        cache.insert_range(0, 16)
        assert cache.contains_range(4, 4)

    def test_unaligned_range_covers_both_blocks(self):
        cache = make_cache()
        cache.insert_range(4, 8)   # spans blocks 0 and 1
        assert cache.used_blocks == 2

    def test_capacity_accounting(self):
        cache = make_cache(capacity_blocks=4)
        assert cache.capacity_blocks == 4
        assert cache.capacity_bytes == 4 * 8 * 512
        cache.insert_range(0, 8)
        assert cache.used_bytes == 8 * 512


class TestEviction:
    def test_lru_eviction_order(self):
        cache = make_cache(capacity_blocks=2)
        cache.insert_range(0, 8)    # block 0
        cache.insert_range(8, 8)    # block 1
        cache.insert_range(16, 8)   # block 2 -> evicts block 0
        assert not cache.contains_range(0, 8)
        assert cache.contains_range(8, 8)
        assert cache.evictions == 1

    def test_touch_refreshes_recency(self):
        cache = make_cache(capacity_blocks=2)
        cache.insert_range(0, 8)
        cache.insert_range(8, 8)
        cache.touch_range(0, 8)     # block 0 now MRU
        cache.insert_range(16, 8)   # evicts block 1
        assert cache.contains_range(0, 8)
        assert not cache.contains_range(8, 8)

    def test_reinsert_refreshes(self):
        cache = make_cache(capacity_blocks=2)
        cache.insert_range(0, 8)
        cache.insert_range(8, 8)
        cache.insert_range(0, 8)
        cache.insert_range(16, 8)
        assert cache.contains_range(0, 8)

    def test_never_exceeds_capacity(self):
        cache = make_cache(capacity_blocks=3)
        for i in range(20):
            cache.insert_range(i * 8, 8)
            assert cache.used_blocks <= 3


class TestInvalidate:
    def test_invalidate_range(self):
        cache = make_cache()
        cache.insert_range(0, 16)
        cache.invalidate_range(0, 8)
        assert not cache.contains_range(0, 16)
        assert cache.contains_range(8, 8)

    def test_invalidate_absent_is_noop(self):
        cache = make_cache()
        cache.invalidate_range(100, 8)
        assert len(cache) == 0

    def test_clear(self):
        cache = make_cache()
        cache.insert_range(0, 32)
        cache.clear()
        assert len(cache) == 0


class TestValidation:
    def test_capacity_below_one_block(self):
        with pytest.raises(ValueError):
            LRUCache(capacity_bytes=100, block_sectors=8)

    def test_bad_block_sectors(self):
        with pytest.raises(ValueError):
            LRUCache(capacity_bytes=4096, block_sectors=0)

    def test_bad_range(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.contains_range(0, 0)
        with pytest.raises(ValueError):
            cache.insert_range(-1, 8)

    def test_iteration_order_lru_first(self):
        cache = make_cache()
        cache.insert_range(0, 8)
        cache.insert_range(8, 8)
        cache.touch_range(0, 8)
        assert list(cache) == [1, 0]
