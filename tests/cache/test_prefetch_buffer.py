"""Prefetch-window FIFO buffer tests."""

import pytest

from repro.cache.prefetch_buffer import PrefetchBuffer


class TestCoverage:
    def test_empty_covers_nothing(self):
        buf = PrefetchBuffer(1000)
        assert not buf.covers(0, 1)

    def test_window_covers_contained_range(self):
        buf = PrefetchBuffer(1000)
        buf.add_window(100, 200)
        assert buf.covers(100, 100)
        assert buf.covers(150, 10)
        assert not buf.covers(99, 2)
        assert not buf.covers(195, 10)

    def test_range_spanning_two_windows_not_covered(self):
        buf = PrefetchBuffer(1000)
        buf.add_window(0, 100)
        buf.add_window(100, 200)
        assert not buf.covers(50, 100)  # single-window containment required

    def test_negative_start_clamped(self):
        buf = PrefetchBuffer(1000)
        buf.add_window(-50, 100)
        assert buf.covers(0, 100)


class TestFifoEviction:
    def test_oldest_window_evicted(self):
        buf = PrefetchBuffer(200)
        buf.add_window(0, 100)
        buf.add_window(1000, 1100)
        buf.add_window(2000, 2100)  # exceeds 200: evicts [0,100)
        assert not buf.covers(0, 100)
        assert buf.covers(1000, 100)
        assert buf.covers(2000, 100)

    def test_used_sectors_accounting(self):
        buf = PrefetchBuffer(500)
        buf.add_window(0, 100)
        buf.add_window(200, 300)
        assert buf.used_sectors == 200
        assert buf.window_count == 2

    def test_oversized_window_truncated_to_tail(self):
        buf = PrefetchBuffer(100)
        buf.add_window(0, 1000)
        assert buf.covers(900, 100)
        assert not buf.covers(0, 100)
        assert buf.used_sectors == 100

    def test_clear(self):
        buf = PrefetchBuffer(100)
        buf.add_window(0, 50)
        buf.clear()
        assert buf.window_count == 0
        assert not buf.covers(0, 1)


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(0)

    def test_empty_window(self):
        buf = PrefetchBuffer(100)
        with pytest.raises(ValueError):
            buf.add_window(10, 10)

    def test_bad_covers_args(self):
        buf = PrefetchBuffer(100)
        with pytest.raises(ValueError):
            buf.covers(0, 0)
