"""Columnar wire format: roundtrips, CRC admission, group splitting."""

import numpy as np
import pytest

from repro.service.wire import (
    OP_BYTES,
    SUPPORTED_WIRES,
    WIRE_BINARY,
    WIRE_JSON,
    WIRE_REF,
    concat_columns,
    decode_payload,
    encode_payload,
    payload_crc,
    payload_nbytes,
    split_group_payload,
)
from tests.service.helpers import make_columns


def test_encode_decode_roundtrip_preserves_columns():
    is_read, lba, length = make_columns(257)
    payload = encode_payload(is_read, lba, length)
    assert len(payload) == payload_nbytes(257) == 257 * OP_BYTES
    out_read, out_lba, out_length = decode_payload(payload, 257)
    np.testing.assert_array_equal(out_read, is_read)
    np.testing.assert_array_equal(out_lba, lba)
    np.testing.assert_array_equal(out_length, length)
    assert out_lba.dtype == np.int64 and out_length.dtype == np.int64


def test_empty_batch_roundtrips():
    payload = encode_payload(*make_columns(0))
    assert payload == b""
    for column in decode_payload(payload, 0):
        assert len(column) == 0


def test_encode_rejects_ragged_columns():
    is_read, lba, length = make_columns(10)
    with pytest.raises(ValueError, match="equal length"):
        encode_payload(is_read[:9], lba, length)


def test_decode_rejects_wrong_size():
    payload = encode_payload(*make_columns(10))
    with pytest.raises(ValueError, match="bytes"):
        decode_payload(payload, 11)
    with pytest.raises(ValueError, match="bytes"):
        decode_payload(payload[:-1], 10)


def test_crc_detects_any_flip():
    payload = bytearray(encode_payload(*make_columns(64)))
    crc = payload_crc(bytes(payload))
    payload[100] ^= 0x40
    assert payload_crc(bytes(payload)) != crc


def test_split_group_payload_roundtrips_uneven_batches():
    counts = [50, 1, 173]
    batches = [make_columns(n, seed=n) for n in counts]
    group = b"".join(encode_payload(*b) for b in batches)
    out = split_group_payload(group, counts)
    assert len(out) == len(batches)
    for (got_r, got_l, got_n), (exp_r, exp_l, exp_n) in zip(out, batches):
        np.testing.assert_array_equal(got_r, exp_r)
        np.testing.assert_array_equal(got_l, exp_l)
        np.testing.assert_array_equal(got_n, exp_n)


def test_split_group_payload_rejects_leftover_bytes():
    group = b"".join(encode_payload(*make_columns(n)) for n in (10, 20))
    with pytest.raises(ValueError, match="group payload"):
        split_group_payload(group, [10])
    with pytest.raises(ValueError):
        split_group_payload(group, [10, 21])


def test_concat_columns_matches_numpy_concatenate():
    batches = [make_columns(n, seed=n) for n in (7, 13, 1)]
    is_read, lba, length = concat_columns(batches)
    np.testing.assert_array_equal(
        is_read, np.concatenate([b[0] for b in batches])
    )
    np.testing.assert_array_equal(lba, np.concatenate([b[1] for b in batches]))
    np.testing.assert_array_equal(
        length, np.concatenate([b[2] for b in batches])
    )
    # Single batch passes through without copying.
    single = make_columns(5)
    assert concat_columns([single]) is single


def test_supported_wires_lead_with_binary():
    assert SUPPORTED_WIRES[0] == WIRE_BINARY
    assert set(SUPPORTED_WIRES) == {WIRE_BINARY, WIRE_REF, WIRE_JSON}
