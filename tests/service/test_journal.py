"""OpJournal: fsynced WAL append, torn-tail truncation, segments, pruning."""

import numpy as np
import pytest

from repro.service.journal import OpJournal
from tests.service.helpers import make_columns


def _batch(seq: int, n: int = 8):
    is_read, lba, length = make_columns(n, seed=seq)
    return seq, is_read, lba, length


def test_append_replay_roundtrip(tmp_path):
    journal = OpJournal(tmp_path)
    journal.open_segment(1)
    sent = [_batch(seq) for seq in (1, 2, 3)]
    for seq, is_read, lba, length in sent:
        journal.append(seq, is_read, lba, length)
    journal.close()

    records = list(OpJournal(tmp_path).replay_after(0))
    assert [r.seq for r in records] == [1, 2, 3]
    for record, (_, is_read, lba, length) in zip(records, sent):
        np.testing.assert_array_equal(record.is_read, is_read)
        np.testing.assert_array_equal(record.lba, lba)
        np.testing.assert_array_equal(record.length, length)
        assert record.lba.dtype == np.int64


def test_replay_after_skips_absorbed_batches(tmp_path):
    journal = OpJournal(tmp_path)
    journal.open_segment(1)
    for seq in (1, 2, 3, 4):
        journal.append(seq, *_batch(seq)[1:])
    journal.close()
    assert [r.seq for r in OpJournal(tmp_path).replay_after(2)] == [3, 4]


def test_torn_tail_is_truncated_in_place(tmp_path):
    journal = OpJournal(tmp_path)
    journal.open_segment(1)
    journal.append(1, *_batch(1)[1:])
    journal.append(2, *_batch(2)[1:])
    journal.close()
    segment = tmp_path / "journal" / "seg-000000000001.log"
    intact_size = segment.stat().st_size
    with open(segment, "ab") as handle:
        handle.write(b"\x31LJR-half-a-header")

    records = list(OpJournal(tmp_path).replay_after(0))
    assert [r.seq for r in records] == [1, 2]
    assert segment.stat().st_size == intact_size


def test_corrupt_crc_drops_record_and_tail(tmp_path):
    journal = OpJournal(tmp_path)
    journal.open_segment(1)
    journal.append(1, *_batch(1)[1:])
    journal.append(2, *_batch(2)[1:])
    journal.close()
    segment = tmp_path / "journal" / "seg-000000000001.log"
    data = bytearray(segment.read_bytes())
    # Flip a payload byte of the *last* record; CRC catches it and the
    # scan stops at the still-intact first record.
    data[-3] ^= 0xFF
    segment.write_bytes(data)
    assert [r.seq for r in OpJournal(tmp_path).replay_after(0)] == [1]


def test_gap_between_segments_raises(tmp_path):
    journal = OpJournal(tmp_path)
    journal.open_segment(1)
    journal.append(1, *_batch(1)[1:])
    journal.rotate(4)
    journal.append(4, *_batch(4)[1:])
    journal.close()
    with pytest.raises(ValueError, match="journal gap"):
        list(OpJournal(tmp_path).replay_after(0))


def test_rotate_and_prune_respect_retained_needs(tmp_path):
    journal = OpJournal(tmp_path)
    journal.open_segment(1)
    journal.append(1, *_batch(1)[1:])
    journal.rotate(2)
    journal.append(2, *_batch(2)[1:])
    journal.rotate(3)
    journal.append(3, *_batch(3)[1:])
    assert journal.segment_first_seqs() == [1, 2, 3]

    # A checkpoint retained at batch 1 still needs seg-2; only seg-1 goes.
    journal.prune_below(2)
    assert journal.segment_first_seqs() == [2, 3]
    # The live (last) segment is never pruned.
    journal.prune_below(10)
    assert journal.segment_first_seqs() == [3]
    assert [r.seq for r in journal.replay_after(2)] == [3]
    journal.close()
