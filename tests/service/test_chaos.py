"""Service fault injectors: deterministic schedules, checkpoint corruption."""

import numpy as np
import pytest

from repro.core.config import LS
from repro.faults.service_faults import ChaosSchedule, corrupt_newest_checkpoint
from repro.service.checkpoint import CheckpointCorruptError, CheckpointStore
from repro.service.session import ReplaySession, SequenceGapError
from tests.service.helpers import (
    CAPACITY,
    batches,
    make_columns,
    reference_queries,
    session_queries,
)


def test_schedule_is_deterministic_and_complete():
    items = list(range(1, 41))
    first = ChaosSchedule(seed=3, duplicate_rate=0.3, delay_rate=0.3).arrange(items)
    second = ChaosSchedule(seed=3, duplicate_rate=0.3, delay_rate=0.3).arrange(items)
    assert first == second
    delivered = [batch for _, batch in first]
    assert sorted(set(delivered)) == items  # every batch delivered >= once
    assert {tag for tag, _ in first} <= {"send", "duplicate", "delayed"}
    # A different seed produces a different schedule (with these rates).
    assert ChaosSchedule(seed=4, duplicate_rate=0.3, delay_rate=0.3).arrange(items) != first


def test_zero_rates_is_the_clean_stream():
    items = list(range(10))
    schedule = ChaosSchedule(seed=0, duplicate_rate=0.0, delay_rate=0.0).arrange(items)
    assert schedule == [("send", item) for item in items]


def test_delayed_batch_lands_after_its_successor():
    items = list(range(1, 101))
    schedule = ChaosSchedule(seed=1, duplicate_rate=0.0, delay_rate=0.5).arrange(items)
    position = {}
    for index, (tag, batch) in enumerate(schedule):
        position.setdefault(batch, index)
        if tag == "delayed":
            assert batch + 1 in position and position[batch + 1] < index
    assert pytest.approx(0.5, abs=0.2) == sum(
        1 for tag, _ in schedule if tag == "delayed"
    ) / len(items)


def test_misdelivered_stream_converges_to_clean_state(tmp_path):
    """Duplicates ack as duplicates, gaps defer and retry: the final state
    must equal the clean in-order stream's exactly."""
    columns = make_columns(300, seed=31)
    expected = reference_queries(tmp_path / "ref", LS, columns, batch_ops=30)

    session = ReplaySession.create("t", tmp_path / "chaos", LS, CAPACITY)
    schedule = ChaosSchedule(seed=7, duplicate_rate=0.4, delay_rate=0.4).arrange(
        batches(columns, 30)
    )
    assert {tag for tag, _ in schedule} == {"send", "duplicate", "delayed"}
    deferred = []
    for _, (seq, is_read, lba, length) in schedule:
        try:
            session.apply_batch(seq, is_read, lba, length)
        except SequenceGapError:
            deferred.append((seq, is_read, lba, length))
    for seq, is_read, lba, length in sorted(deferred, key=lambda b: b[0]):
        session.apply_batch(seq, is_read, lba, length)
    assert session.applied_seq == 10
    assert session_queries(session) == expected
    session.close()


def test_corrupt_newest_checkpoint_targets_only_the_newest(tmp_path):
    state = {"payload": np.arange(4000, dtype=np.int64)}
    store = CheckpointStore(tmp_path)
    store.save(1, state)
    store.save(2, state)
    damaged = corrupt_newest_checkpoint(tmp_path, seed=5)
    assert damaged == store.entry_path(2)
    with pytest.raises(CheckpointCorruptError):
        store.load(2)
    assert store.load(1)["payload"].shape == (4000,)


def test_corrupt_newest_checkpoint_without_checkpoints_is_a_noop(tmp_path):
    assert corrupt_newest_checkpoint(tmp_path) is None
