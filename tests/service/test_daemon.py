"""Daemon + client over real sockets: protocol, dedupe/gap, shedding."""

import pytest

from repro.core.config import LS, LS_DEFRAG
from repro.service.client import ReplayClient, ServiceError
from repro.service.smoke import _DaemonThread
from tests.service.helpers import CAPACITY, batches, make_columns, reference_queries


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    thread = _DaemonThread(tmp_path_factory.mktemp("daemon-state"))
    thread.start()
    yield thread
    thread.stop()


def _client(server, tenant):
    return ReplayClient("127.0.0.1", server.daemon.port, tenant)


def test_stream_matches_offline_reference(server, tmp_path):
    columns = make_columns(300, seed=21)
    expected = reference_queries(tmp_path / "ref", LS_DEFRAG, columns, batch_ops=50)
    with _client(server, "roundtrip") as client:
        client.open(LS_DEFRAG, CAPACITY)
        for _, is_read, lba, length in batches(columns, 50):
            ack = client.apply_with_retry(is_read, lba, length)
            assert ack["ok"]
        assert client.applied_seq() == 6
        assert client.query("stats") == expected["stats"]
        assert client.query("saf") == expected["saf"]
        assert [list(p) for p in client.query("fragment_cdf")["points"]] == [
            list(p) for p in expected["fragment_cdf"]["points"]
        ]


def test_duplicate_ack_and_gap_resync(server):
    is_read, lba, length = make_columns(30, seed=22)
    with _client(server, "dedupe") as client:
        client.open(LS, CAPACITY)
        first = client.apply(is_read[:10], lba[:10], length[:10], seq=1)
        assert first["ok"] and first["duplicate"] is False

        resent = client.apply(is_read[:10], lba[:10], length[:10], seq=1)
        assert resent["ok"] and resent["duplicate"] is True
        assert resent["applied_seq"] == 1

        gap = client.apply(is_read[10:20], lba[10:20], length[10:20], seq=7)
        assert not gap["ok"]
        assert gap["kind"] == "SequenceGapError"
        assert gap["expected"] == 2

        # apply_with_retry trusts the server's expected seq and renumbers.
        client.next_seq = 7
        ack = client.apply_with_retry(is_read[10:20], lba[10:20], length[10:20])
        assert ack["ok"] and ack["applied_seq"] == 2


def test_expired_deadline_is_shed_not_applied(server):
    is_read, lba, length = make_columns(20, seed=23)
    with _client(server, "deadline") as client:
        client.open(LS, CAPACITY)
        shed = client.apply(is_read, lba, length, deadline_s=-1.0)
        assert not shed["ok"]
        assert shed["shed"] is True
        assert client.applied_seq() == 0
        # The shed batch was refused, not half-applied: a plain resend of
        # the same seq goes through.
        ack = client.apply_with_retry(is_read, lba, length)
        assert ack["ok"]
        assert client.applied_seq() == 1


def test_close_and_reattach_preserves_applied_seq(server):
    is_read, lba, length = make_columns(40, seed=24)
    with _client(server, "reattach") as client:
        client.open(LS, CAPACITY)
        client.apply_with_retry(is_read[:20], lba[:20], length[:20])
        client.apply_with_retry(is_read[20:], lba[20:], length[20:])
        client.close_session()
    with _client(server, "reattach") as client:
        response = client.open(LS, CAPACITY)
        assert response["applied_seq"] == 2
        assert client.next_seq == 3
        # And the config is pinned: reopening differently is refused.
        with pytest.raises(ServiceError, match="different"):
            client.open(LS_DEFRAG, CAPACITY)


def test_ops_require_an_open_session(server):
    with _client(server, "ghost") as client:
        with pytest.raises(ServiceError, match="not open"):
            client.query("stats")


def test_ping_lists_tenants(server):
    with _client(server, "pinger") as client:
        response = client.request({"op": "ping"})
        assert response["ok"]
        assert isinstance(response["tenants"], list)


def test_malformed_requests_get_error_replies(server):
    with _client(server, "mallory") as client:
        client.connect()
        client._file.write(b"this is not json\n")
        client._file.flush()
        import json

        assert not json.loads(client._file.readline())["ok"]
        assert not client.request({"op": "query"})["ok"]  # missing tenant
        assert not client.request({"op": "frobnicate", "tenant": "x"})["ok"]
