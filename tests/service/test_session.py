"""ReplaySession: WAL contract, dedupe/gap, crash recovery, live queries."""

import numpy as np
import pytest

from repro.core.config import LS, LS_ALL, LS_DEFRAG, NOLS
from repro.faults.service_faults import corrupt_newest_checkpoint
from repro.service.checkpoint import CheckpointStore
from repro.service.session import ReplaySession, SequenceGapError
from tests.service.helpers import (
    CAPACITY,
    batches,
    make_columns,
    reference_queries,
    session_queries,
)


def test_apply_acks_and_counts(tmp_path):
    session = ReplaySession.create("t", tmp_path, LS, CAPACITY)
    columns = make_columns(120)
    for seq, is_read, lba, length in batches(columns, 40):
        ack = session.apply_batch(seq, is_read, lba, length)
        assert ack == {
            "seq": seq,
            "applied_seq": seq,
            "ops": seq * 40,
            "duplicate": False,
        }
    assert session.applied_seq == 3
    assert session.ops_applied == 120
    session.close()


def test_duplicate_batch_is_acked_without_effect(tmp_path):
    session = ReplaySession.create("t", tmp_path, LS, CAPACITY)
    columns = make_columns(80)
    for seq, is_read, lba, length in batches(columns, 40):
        session.apply_batch(seq, is_read, lba, length)
    before = session_queries(session)

    ack = session.apply_batch(1, *batches(columns, 40)[0][1:])
    assert ack["duplicate"] is True
    assert ack["applied_seq"] == 2
    assert session_queries(session) == before
    session.close()


def test_gap_raises_with_resync_hint(tmp_path):
    session = ReplaySession.create("t", tmp_path, LS, CAPACITY)
    is_read, lba, length = make_columns(10)
    with pytest.raises(SequenceGapError) as excinfo:
        session.apply_batch(5, is_read, lba, length)
    assert excinfo.value.expected == 1
    assert excinfo.value.got == 5
    session.close()


def test_invalid_batch_rejected_before_journaling(tmp_path):
    session = ReplaySession.create("t", tmp_path, LS, CAPACITY)
    is_read, lba, length = make_columns(10)
    bad_lba = lba.copy()
    bad_lba[3] = CAPACITY  # lba+length crosses the declared capacity
    with pytest.raises(ValueError, match="beyond the declared capacity"):
        session.apply_batch(1, is_read, bad_lba, length)
    with pytest.raises(ValueError, match="length > 0"):
        session.apply_batch(1, is_read, lba, np.zeros_like(length))
    with pytest.raises(ValueError, match="equal length"):
        session.apply_batch(1, is_read[:-1], lba, length)
    # Nothing was journaled or applied: seq 1 is still next, and the
    # stream continues exactly as if the bad batches never happened.
    assert session.applied_seq == 0
    ack = session.apply_batch(1, is_read, lba, length)
    assert ack["duplicate"] is False
    session.close()


def test_open_refuses_mismatched_config_or_capacity(tmp_path):
    ReplaySession.create("t", tmp_path, LS_DEFRAG, CAPACITY).close()
    with pytest.raises(ValueError, match="refusing to mix"):
        ReplaySession.open("t", tmp_path, LS, CAPACITY)
    with pytest.raises(ValueError, match="refusing to mix"):
        ReplaySession.open("t", tmp_path, LS_DEFRAG, CAPACITY * 2)


def test_auto_checkpoint_every_interval(tmp_path):
    session = ReplaySession.create(
        "t", tmp_path, LS, CAPACITY, checkpoint_interval_ops=100
    )
    columns = make_columns(250)
    store = CheckpointStore(tmp_path)
    assert store.sequence_numbers() == [0]
    for seq, is_read, lba, length in batches(columns, 50):
        session.apply_batch(seq, is_read, lba, length)
    # Auto-checkpoints fired at 100 and 200 ops (batches 2 and 4).
    assert store.sequence_numbers() == [2, 4]
    session.close()


@pytest.mark.parametrize("config", [LS, LS_DEFRAG, LS_ALL, NOLS], ids=lambda c: c.name)
def test_kill9_recovery_is_bit_identical(tmp_path, config):
    """Abandon a session mid-stream (no close): reopen must replay the
    journal tail onto the checkpoint and match the uninterrupted run."""
    columns = make_columns(400, seed=3)
    expected = reference_queries(tmp_path / "ref", config, columns, batch_ops=40)

    root = tmp_path / "crashed"
    session = ReplaySession.create(
        "t", root, config, CAPACITY, checkpoint_interval_ops=120
    )
    all_batches = batches(columns, 40)
    # 7 batches of 40 ops with a 120-op interval: auto-checkpoints land at
    # batches 3 and 6, so batch 7 lives only in the journal tail.
    for seq, is_read, lba, length in all_batches[:7]:
        session.apply_batch(seq, is_read, lba, length)
    # kill -9: drop the session without close(); journaled batches beyond
    # the newest auto-checkpoint only survive via the WAL.  A torn partial
    # record at the tail (the write the crash interrupted) must not matter.
    with open(session._journal._segment, "ab") as handle:
        handle.write(b"\x31LJR\x00torn")
    del session

    recovered = ReplaySession.open(
        "t", root, config, CAPACITY, checkpoint_interval_ops=120
    )
    assert recovered.applied_seq == 7
    for seq, is_read, lba, length in all_batches[7:]:
        recovered.apply_batch(seq, is_read, lba, length)
    assert session_queries(recovered) == expected
    recovered.close()


def test_corrupt_newest_checkpoint_falls_back_bit_identical(tmp_path):
    """Damaged newest checkpoint: recovery must fall back to the previous
    one, replay the *longer* journal tail, and still match exactly."""
    config = LS_DEFRAG
    columns = make_columns(400, seed=5)
    expected = reference_queries(tmp_path / "ref", config, columns, batch_ops=40)

    root = tmp_path / "crashed"
    session = ReplaySession.create(
        "t", root, config, CAPACITY, checkpoint_interval_ops=10**9
    )
    all_batches = batches(columns, 40)
    for seq, is_read, lba, length in all_batches[:4]:
        session.apply_batch(seq, is_read, lba, length)
    session.checkpoint()  # older, intact
    for seq, is_read, lba, length in all_batches[4:7]:
        session.apply_batch(seq, is_read, lba, length)
    session.checkpoint()  # newest — about to be damaged
    damaged = corrupt_newest_checkpoint(root, seed=13)
    assert damaged is not None
    del session

    recovered = ReplaySession.open("t", root, config, CAPACITY)
    assert recovered.applied_seq == 7  # checkpoint 4 + journal batches 5..7
    for seq, is_read, lba, length in all_batches[7:]:
        recovered.apply_batch(seq, is_read, lba, length)
    assert session_queries(recovered) == expected
    recovered.close()


def test_total_checkpoint_loss_replays_from_scratch(tmp_path):
    config = LS
    columns = make_columns(200, seed=8)
    expected = reference_queries(tmp_path / "ref", config, columns, batch_ops=50)

    root = tmp_path / "crashed"
    session = ReplaySession.create(
        "t", root, config, CAPACITY, checkpoint_interval_ops=10**9
    )
    for seq, is_read, lba, length in batches(columns, 50):
        session.apply_batch(seq, is_read, lba, length)
    del session  # no close: the journal holds everything past checkpoint 0

    # Destroy every checkpoint; only the journal remains.
    import shutil

    shutil.rmtree(root / "checkpoints")
    recovered = ReplaySession.open("t", root, config, CAPACITY)
    assert recovered.applied_seq == 4
    assert session_queries(recovered) == expected
    recovered.close()


def test_query_kinds_and_unknown(tmp_path):
    session = ReplaySession.create("t", tmp_path, LS, CAPACITY)
    for seq, is_read, lba, length in batches(make_columns(100), 50):
        session.apply_batch(seq, is_read, lba, length)
    stats = session.query("stats")
    assert stats["reads"] + stats["writes"] == 100
    saf = session.query("saf")
    assert set(saf) >= {"read", "write", "total", "baseline_read_seeks"}
    cdf = session.query("fragment_cdf")["points"]
    assert all(0 <= frac <= 1 for _, frac in cdf)
    budget = session.query("seek_budget", window_gib=1.0)
    assert budget["total_seek_ms"] >= budget["read_seek_ms"] >= 0
    assert 0 <= budget["fraction_within"] <= 1
    with pytest.raises(ValueError, match="unknown query kind"):
        session.query("nope")
    session.close()
