"""Shared helpers for the service test suite."""

from __future__ import annotations

import numpy as np

from repro.core.config import TechniqueConfig
from repro.service.session import ReplaySession

#: Declared LBA capacity for synthetic service streams (sectors).
CAPACITY = 4096


def make_columns(n: int, capacity: int = CAPACITY, seed: int = 7):
    """Deterministic synthetic op columns that fit under ``capacity``."""
    rng = np.random.default_rng(seed)
    length = rng.integers(1, 33, size=n).astype(np.int64)
    lba = rng.integers(0, capacity - 33, size=n).astype(np.int64)
    is_read = rng.random(n) < 0.5
    # Lead with a write so reads can hit translated extents early.
    if n:
        is_read[0] = False
    return np.ascontiguousarray(is_read), lba, length


def batches(columns, batch_ops: int):
    """Slice op columns into (seq, is_read, lba, length) batches from 1."""
    is_read, lba, length = columns
    out = []
    for index, start in enumerate(range(0, len(lba), batch_ops)):
        end = min(start + batch_ops, len(lba))
        out.append(
            (index + 1, is_read[start:end], lba[start:end], length[start:end])
        )
    return out


def reference_queries(
    tmp_root, config: TechniqueConfig, columns, batch_ops: int = 50
) -> dict:
    """Queries of an uninterrupted session fed the whole stream."""
    session = ReplaySession.create(
        "reference", tmp_root, config, CAPACITY, checkpoint_interval_ops=10**9
    )
    for seq, is_read, lba, length in batches(columns, batch_ops):
        session.apply_batch(seq, is_read, lba, length)
    out = {
        kind: session.query(kind)
        for kind in ("applied", "stats", "saf", "fragment_cdf", "seek_budget")
    }
    session.close()
    return out


def session_queries(session: ReplaySession) -> dict:
    return {
        kind: session.query(kind)
        for kind in ("applied", "stats", "saf", "fragment_cdf", "seek_budget")
    }
