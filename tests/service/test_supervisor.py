"""Supervisor: spawned workers, transparent restart, backoff, crash budget.

These tests boot real spawned worker processes; op counts are kept small
so the suite stays fast (each boot is one interpreter start).
"""

import pytest

from repro.core.config import LS, LS_DEFRAG
from repro.faults.service_faults import kill_worker
from repro.service.supervisor import (
    Supervisor,
    SupervisorConfig,
    TenantFailedError,
    WorkerCallError,
)
from repro.service.worker import encode_ops
from tests.service.helpers import CAPACITY, batches, make_columns, reference_queries


def _apply(supervisor, tenant, batch):
    seq, is_read, lba, length = batch
    message = {"cmd": "apply", "seq": seq}
    message.update(encode_ops(is_read, lba, length))
    return supervisor.call(tenant, message)


def test_kill9_midstream_restart_is_transparent(tmp_path):
    columns = make_columns(300, seed=2)
    expected = reference_queries(tmp_path / "ref", LS_DEFRAG, columns, batch_ops=50)
    supervisor = Supervisor(
        tmp_path / "state",
        SupervisorConfig(backoff_base_s=0.01, checkpoint_interval_ops=100),
    )
    try:
        supervisor.ensure_tenant("t", LS_DEFRAG, CAPACITY)
        with pytest.raises(ValueError, match="different"):
            supervisor.ensure_tenant("t", LS, CAPACITY)

        all_batches = batches(columns, 50)
        for batch in all_batches[:3]:
            assert _apply(supervisor, "t", batch)["ok"]

        pid = supervisor.worker_pid("t")
        assert pid is not None
        kill_worker(pid)

        # The very next call detects the death, restarts the worker (WAL
        # recovery inside) and replays the call once — the caller just
        # sees a successful ack.
        for batch in all_batches[3:]:
            assert _apply(supervisor, "t", batch)["ok"]
        assert supervisor.restart_count("t") == 1
        assert supervisor.worker_pid("t") != pid

        for kind in ("stats", "saf", "fragment_cdf", "seek_budget"):
            live = supervisor.call("t", {"cmd": "query", "kind": kind})
            assert live["ok"]
            reference = expected[kind]
            if kind == "fragment_cdf":
                assert [list(p) for p in live["result"]["points"]] == [
                    list(p) for p in reference["points"]
                ]
            else:
                assert live["result"] == reference
    finally:
        supervisor.shutdown()


def test_crash_during_call_twice_raises_then_recovers(tmp_path):
    supervisor = Supervisor(
        tmp_path / "state", SupervisorConfig(backoff_base_s=0.0, backoff_cap_s=0.0)
    )
    try:
        supervisor.ensure_tenant("t", LS, CAPACITY)
        # "crash" kills the worker before it can answer; the replayed
        # attempt crashes again, so the call itself must fail cleanly...
        with pytest.raises(WorkerCallError, match="died twice"):
            supervisor.call("t", {"cmd": "crash"})
        # ...but the tenant is not poisoned: the next call restarts.
        response = supervisor.call("t", {"cmd": "ping"})
        assert response["ok"]
        assert supervisor.restart_count("t") == 2
    finally:
        supervisor.shutdown()


def test_restart_budget_retires_tenant(tmp_path):
    sleeps = []
    deaths = []
    supervisor = Supervisor(
        tmp_path / "state",
        SupervisorConfig(
            backoff_base_s=0.25,
            backoff_cap_s=1.0,
            max_restarts=2,
            crash_window_s=30.0,
        ),
        clock=lambda: 0.0,  # every crash lands in one window
        sleep=sleeps.append,  # recorded, never actually slept
        on_worker_death=lambda name, n: deaths.append((name, n)),
    )
    try:
        supervisor.ensure_tenant("t", LS, CAPACITY)
        for _ in range(2):
            kill_worker(supervisor.worker_pid("t"))
            assert supervisor.call("t", {"cmd": "ping"})["ok"]
        # Second restart in the window backed off exponentially from base.
        assert sleeps == [0.25]
        assert deaths == [("t", 1), ("t", 2)]

        kill_worker(supervisor.worker_pid("t"))
        with pytest.raises(TenantFailedError, match="retiring"):
            supervisor.call("t", {"cmd": "ping"})
        # The tenant stays failed: no further boot attempts are made.
        with pytest.raises(TenantFailedError):
            supervisor.call("t", {"cmd": "ping"})
        assert supervisor.restart_count("t") == 2
    finally:
        supervisor.shutdown()
