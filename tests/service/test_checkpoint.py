"""CheckpointStore: checksummed commit, pruning, self-healing fallback."""

import json

import numpy as np
import pytest

from repro.service.checkpoint import (
    KEEP_CHECKPOINTS,
    CheckpointCorruptError,
    CheckpointStore,
)
from repro.util.npystore import PAGE_ALIGN


def _state(tag: int) -> dict:
    return {
        "tag": tag,
        "nested": {
            "columns": np.arange(2000, dtype=np.int64) * tag,
            "flags": np.array([True, False, tag % 2 == 0]),
        },
        "items": [
            {"distance": np.full(700, tag, dtype=np.int64)},
            {"scalar": 3.5 + tag},
        ],
        "np_scalar": np.int64(tag),
    }


def test_roundtrip_preserves_arrays_and_scalars(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(4, _state(9))
    loaded = store.load(4)
    assert loaded["tag"] == 9
    assert loaded["np_scalar"] == 9
    assert loaded["items"][1]["scalar"] == 12.5
    np.testing.assert_array_equal(
        loaded["nested"]["columns"], np.arange(2000, dtype=np.int64) * 9
    )
    assert loaded["nested"]["columns"].dtype == np.int64
    np.testing.assert_array_equal(loaded["nested"]["flags"], [True, False, False])
    np.testing.assert_array_equal(loaded["items"][0]["distance"], np.full(700, 9))


def test_prune_keeps_newest_entries(tmp_path):
    store = CheckpointStore(tmp_path)
    for seq in (1, 2, 3, 4):
        store.save(seq, _state(seq))
    assert store.sequence_numbers() == [3, 4][-KEEP_CHECKPOINTS:]


def test_flipped_payload_byte_fails_checksum(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(7, _state(1))
    target = sorted(store.entry_path(7).glob("*.npy"))[0]
    with open(target, "r+b") as handle:
        handle.seek(PAGE_ALIGN + 16)
        byte = handle.read(1)
        handle.seek(PAGE_ALIGN + 16)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(CheckpointCorruptError, match="checksum"):
        store.load(7)


def test_tampered_header_state_fails_checksum(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(2, _state(1))
    header_path = store.entry_path(2) / "header.json"
    header = json.loads(header_path.read_text())
    header["state"]["tag"] = 999
    header_path.write_text(json.dumps(header))
    with pytest.raises(CheckpointCorruptError):
        store.load(2)


def test_load_latest_falls_back_and_self_heals(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(1, _state(1))
    store.save(5, _state(5))
    newest = sorted(store.entry_path(5).glob("*.npy"))[0]
    with open(newest, "r+b") as handle:
        handle.seek(PAGE_ALIGN + 8)
        handle.write(b"\xa5" * 32)
    seq, state = store.load_latest()
    assert seq == 1
    assert state["tag"] == 1
    # The damaged entry must be gone, or it would mask seq 1 forever.
    assert store.sequence_numbers() == [1]


def test_load_latest_empty_store_returns_none(tmp_path):
    assert CheckpointStore(tmp_path).load_latest() is None


def test_foreign_entry_is_rejected(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(3, _state(3))
    header_path = store.entry_path(3) / "header.json"
    header = json.loads(header_path.read_text())
    header["kind"] = "something-else"
    header_path.write_text(json.dumps(header))
    with pytest.raises(CheckpointCorruptError, match="foreign"):
        store.load(3)
