"""Shared mmap pool: resolve/slice contract and by-reference sessions."""

import numpy as np
import pytest

from repro.core.config import LS
from repro.service.pool import PoolMissError, TracePool, publish_trace
from repro.service.session import ReplaySession
from repro.trace.store import TraceStore, synthetic_meta
from repro.workloads.generator import generate_workload
from repro.workloads.table1 import get_spec
from tests.service.helpers import session_queries


@pytest.fixture()
def published(tmp_path):
    """A store with one tiny published trace; yields (pool, key, trace)."""
    store = TraceStore(tmp_path / "store")
    trace = generate_workload(get_spec("hm_1"), seed=7, scale=0.01)
    key = publish_trace(store, trace, synthetic_meta("hm_1", 7, 0.01))
    return TracePool(tmp_path / "store"), key, trace


def test_resolve_returns_the_published_columns(published):
    pool, key, trace = published
    (is_read, lba, length), ops = pool.resolve(key)
    exp_read, exp_lba, exp_length = trace.as_arrays()
    assert ops == len(exp_lba)
    np.testing.assert_array_equal(is_read, exp_read)
    np.testing.assert_array_equal(lba, exp_lba)
    np.testing.assert_array_equal(length, exp_length)
    # The views are read-only mmaps — serving must never mutate the store.
    with pytest.raises(ValueError):
        lba[0] = 1


def test_slice_bounds_are_checked(published):
    pool, key, trace = published
    ops = len(trace.as_arrays()[1])
    is_read, lba, length = pool.slice(key, 5, 25)
    assert len(lba) == 20
    np.testing.assert_array_equal(lba, trace.as_arrays()[1][5:25])
    for start, stop in ((-1, 5), (5, ops + 1), (10, 5)):
        with pytest.raises(ValueError, match="ref range"):
            pool.slice(key, start, stop)


def test_unknown_key_is_a_pool_miss(published):
    pool, _, _ = published
    with pytest.raises(PoolMissError, match="deadbeef"):
        pool.resolve("deadbeef")


def test_torn_entry_is_a_pool_miss(tmp_path, published):
    pool, key, _ = published
    (pool.root / key / "lba.npy").unlink()
    fresh = TracePool(pool.root)  # no cached handle
    with pytest.raises(PoolMissError):
        fresh.resolve(key)


def test_lru_keeps_at_most_max_entries(tmp_path):
    store = TraceStore(tmp_path / "store")
    keys = []
    for seed in (1, 2, 3):
        trace = generate_workload(get_spec("hm_1"), seed=seed, scale=0.005)
        keys.append(
            publish_trace(store, trace, synthetic_meta("hm_1", seed, 0.005))
        )
    pool = TracePool(tmp_path / "store", max_entries=2)
    for key in keys:
        pool.resolve(key)
    assert len(pool._open) == 2
    # Oldest key got evicted but still resolves (re-opened on demand).
    assert pool.resolve(keys[0])[1] > 0


def test_ref_group_matches_payload_apply(tmp_path, published):
    """apply_ref_group over the pool == feeding the same ops by value."""
    pool, key, trace = published
    is_read, lba, length = trace.as_arrays()
    capacity = int(trace.max_end)
    n = min(len(lba), 600)

    by_value = ReplaySession.create(
        "v", tmp_path / "v", LS, capacity, checkpoint_interval_ops=10**9
    )
    step = 100
    for i, start in enumerate(range(0, n, step)):
        stop = min(start + step, n)
        by_value.apply_batch(
            i + 1, is_read[start:stop], lba[start:stop], length[start:stop]
        )

    by_ref = ReplaySession.create(
        "r", tmp_path / "r", LS, capacity,
        checkpoint_interval_ops=10**9, pool=pool,
    )
    refs = [
        (key, start, min(start + step, n)) for start in range(0, n, step)
    ]
    responses = by_ref.apply_ref_group(1, refs)
    assert all(r["ok"] for r in responses)
    assert session_queries(by_ref) == session_queries(by_value)
    by_value.close()
    by_ref.close()


def test_ref_batch_without_pool_is_refused(tmp_path):
    session = ReplaySession.create(
        "t", tmp_path / "t", LS, 4096, checkpoint_interval_ops=10**9
    )
    with pytest.raises(ValueError, match="no shared pool"):
        session.apply_ref_group(1, [("00ff", 0, 10)])
    session.close()
