"""The benchmark regression gate itself (benchmarks/check_regression.py).

The gate guards the batch kernels' speedup claim, so its comparison
logic gets unit-tested here with synthetic reports — no timing involved.
"""

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _report(ls_reference=10.0, ls_batch=2.0, speedup=5.0, ops=1000):
    return {
        "schema": 1,
        "ops": ops,
        "results": {
            "replay_ls": {
                "reference": {"seconds": ls_reference},
                "batch": {
                    "seconds": ls_batch,
                    "speedup_vs_reference": speedup,
                },
            }
        },
    }


def _ingest_report(cold_speedup=5.0, warm_speedup=40.0, **kwargs):
    report = _report(**kwargs)
    report["results"]["ingest_msr"] = {
        "ops": 1000,
        "reference": {"seconds": 10.0},
        "columnar": {
            "seconds": round(10.0 / cold_speedup, 4),
            "speedup_vs_reference": cold_speedup,
        },
        "warm_store": {
            "seconds": round(10.0 / warm_speedup, 4),
            "speedup_vs_reference": warm_speedup,
        },
    }
    return report


def _sweep_report(fig11_speedup=8.0, cache_speedup=20.0, **kwargs):
    report = _report(**kwargs)
    for name, speedup, configs in (
        ("sweep_fig11", fig11_speedup, 5),
        ("sweep_cache_ablation", cache_speedup, 16),
    ):
        report["results"][name] = {
            "ops": 1000,
            "configs": configs,
            "reference": {"seconds": 10.0},
            "sweep": {
                "seconds": round(10.0 / speedup, 4),
                "speedup_vs_reference": speedup,
            },
        }
    return report


def _jobs_report(warm_jobs4_speedup=3.5, cold_jobs4_speedup=2.0, **kwargs):
    report = _report(**kwargs)
    report["results"]["jobs_scaling"] = {
        "exhibits": ["table1", "fig2"],
        "scale": 1.0,
        "jobs": 4,
        "cpu_count": 1,
        "reference": {"seconds": 35.0},
        "cold_jobs4": {
            "seconds": round(35.0 / cold_jobs4_speedup, 4),
            "speedup_vs_reference": cold_jobs4_speedup,
        },
        "warm_jobs1": {"seconds": 10.0, "speedup_vs_reference": 3.5},
        "warm_jobs4": {
            "seconds": round(35.0 / warm_jobs4_speedup, 4),
            "speedup_vs_reference": warm_jobs4_speedup,
        },
    }
    return report


def _write_heavy_report(ls_all=5.0, write_heavy=6.0, write_heavy_all=6.0, **kwargs):
    report = _report(**kwargs)
    for name, speedup in (
        ("replay_ls_all", ls_all),
        ("replay_ls_write_heavy", write_heavy),
        ("replay_ls_write_heavy_all", write_heavy_all),
    ):
        report["results"][name] = {
            "reference": {"seconds": 10.0},
            "batch": {
                "seconds": round(10.0 / speedup, 4),
                "speedup_vs_reference": speedup,
            },
        }
    return report


def _finite_log_report(multifrontier=8.0, cleaning=7.0, **kwargs):
    report = _report(**kwargs)
    for name, speedup in (
        ("replay_multifrontier", multifrontier),
        ("replay_cleaning", cleaning),
    ):
        report["results"][name] = {
            "reference": {"seconds": 10.0},
            "batch": {
                "seconds": round(10.0 / speedup, 4),
                "speedup_vs_reference": speedup,
            },
        }
    return report


def _ingest_parallel_report(ratio=0.9, **kwargs):
    report = _report(**kwargs)
    report["results"]["ingest_cold_parallel"] = {
        "workloads": 21,
        "scale": 1.0,
        "jobs": 4,
        "cpu_count": 1,
        "reference": {"seconds": 30.0},
        "jobs4": {
            "seconds": round(30.0 / ratio, 4),
            "speedup_vs_reference": ratio,
        },
    }
    return report


def _verdicts(current, baseline, tolerance=0.2, min_speedup=3.0):
    return list(check_regression.check(current, baseline, tolerance, min_speedup))


class TestCheck:
    def test_identical_reports_pass(self):
        verdicts = _verdicts(_report(), _report())
        assert all(ok for ok, _ in verdicts)

    def test_slowdown_beyond_tolerance_fails(self):
        verdicts = _verdicts(_report(ls_batch=2.5), _report(ls_batch=2.0))
        failures = [message for ok, message in verdicts if not ok]
        assert any("replay_ls.batch" in message for message in failures)

    def test_slowdown_within_tolerance_passes(self):
        verdicts = _verdicts(_report(ls_batch=2.3), _report(ls_batch=2.0))
        assert all(ok for ok, _ in verdicts)

    def test_speedup_below_floor_fails(self):
        verdicts = _verdicts(_report(speedup=2.4), _report())
        failures = [message for ok, message in verdicts if not ok]
        assert any("speedup" in message for message in failures)

    def test_mismatched_op_counts_refuse_to_compare(self):
        verdicts = _verdicts(_report(ops=500), _report(ops=1000))
        assert len(verdicts) == 1
        ok, message = verdicts[0]
        assert not ok
        assert "not comparable" in message

    def test_benchmarks_missing_from_baseline_are_ignored(self):
        current = _report()
        current["results"]["replay_new"] = {
            "reference": {"seconds": 1.0},
            "batch": {"seconds": 0.5, "speedup_vs_reference": 2.0},
        }
        verdicts = _verdicts(current, _report())
        assert all(ok for ok, _ in verdicts)
        assert not any("replay_new" in message for _, message in verdicts)


class TestIngestGates:
    """The ingest gates only engage when the report carries the entries,
    so pre-ingest reports (and their baselines) keep passing unchanged."""

    def test_report_without_ingest_emits_no_ingest_gate(self):
        verdicts = _verdicts(_report(), _report())
        assert not any("ingest_msr" in message for _, message in verdicts)

    def test_healthy_ingest_passes(self):
        verdicts = _verdicts(_ingest_report(), _ingest_report())
        assert all(ok for ok, _ in verdicts)
        assert sum("ingest_msr" in m for _, m in verdicts) >= 4  # 2 timing + 2 gates

    def test_cold_ingest_speedup_below_floor_fails(self):
        verdicts = _verdicts(_ingest_report(cold_speedup=2.9), _ingest_report())
        failures = [m for ok, m in verdicts if not ok]
        assert any("columnar" in m and "speedup" in m for m in failures)

    def test_warm_store_speedup_below_floor_fails(self):
        verdicts = _verdicts(_ingest_report(warm_speedup=9.0), _ingest_report())
        failures = [m for ok, m in verdicts if not ok]
        assert any("warm_store" in m and "speedup" in m for m in failures)

    def test_ingest_timing_regression_fails_like_any_other(self):
        current = _ingest_report()
        current["results"]["ingest_msr"]["columnar"]["seconds"] = 9.0
        failures = [m for ok, m in _verdicts(current, _ingest_report()) if not ok]
        assert any("ingest_msr.columnar" in m for m in failures)

    def test_custom_floors_are_respected(self):
        report = _ingest_report(cold_speedup=2.0, warm_speedup=5.0)
        verdicts = list(
            check_regression.check(
                report,
                report,
                0.2,
                3.0,
                min_ingest_speedup=1.5,
                min_warm_speedup=4.0,
            )
        )
        assert all(ok for ok, _ in verdicts)


class TestSweepGates:
    """The sweep-engine gates, like the ingest ones, only engage when the
    report carries the entries."""

    def test_report_without_sweep_emits_no_sweep_gate(self):
        verdicts = _verdicts(_report(), _report())
        assert not any("sweep_fig11" in m for _, m in verdicts)
        assert not any("sweep_cache_ablation" in m for _, m in verdicts)

    def test_healthy_sweeps_pass(self):
        verdicts = _verdicts(_sweep_report(), _sweep_report())
        assert all(ok for ok, _ in verdicts)
        assert any("sweep_fig11" in m for _, m in verdicts)
        assert any("sweep_cache_ablation" in m for _, m in verdicts)

    def test_fig11_sweep_below_floor_fails(self):
        verdicts = _verdicts(_sweep_report(fig11_speedup=4.9), _sweep_report())
        failures = [m for ok, m in verdicts if not ok]
        assert any("sweep_fig11" in m and "speedup" in m for m in failures)

    def test_cache_sweep_below_floor_fails(self):
        verdicts = _verdicts(_sweep_report(cache_speedup=9.9), _sweep_report())
        failures = [m for ok, m in verdicts if not ok]
        assert any("sweep_cache_ablation" in m and "speedup" in m for m in failures)

    def test_sweep_timing_regression_fails_like_any_other(self):
        current = _sweep_report()
        current["results"]["sweep_cache_ablation"]["sweep"]["seconds"] = 9.0
        failures = [m for ok, m in _verdicts(current, _sweep_report()) if not ok]
        assert any("sweep_cache_ablation.sweep" in m for m in failures)

    def test_custom_floors_are_respected(self):
        report = _sweep_report(fig11_speedup=3.0, cache_speedup=6.0)
        verdicts = list(
            check_regression.check(
                report,
                report,
                0.2,
                3.0,
                min_fig11_speedup=2.5,
                min_cache_sweep_speedup=5.0,
            )
        )
        assert all(ok for ok, _ in verdicts)


class TestJobsScalingGate:
    """The end-to-end exhibit gate engages only when the report carries a
    ``jobs_scaling`` entry, like the other optional gates."""

    def test_report_without_jobs_scaling_emits_no_gate(self):
        verdicts = _verdicts(_report(), _report())
        assert not any("jobs_scaling" in m for _, m in verdicts)

    def test_healthy_warm_speedup_passes(self):
        verdicts = _verdicts(_jobs_report(), _jobs_report())
        assert all(ok for ok, _ in verdicts)
        assert any("jobs_scaling" in m and "warm_jobs4" in m for _, m in verdicts)

    def test_warm_speedup_below_floor_fails(self):
        verdicts = _verdicts(_jobs_report(warm_jobs4_speedup=2.4), _jobs_report())
        failures = [m for ok, m in verdicts if not ok]
        assert any("warm_jobs4" in m and "speedup" in m for m in failures)

    def test_cell_timings_gate_like_any_other(self):
        current = _jobs_report()
        current["results"]["jobs_scaling"]["warm_jobs1"]["seconds"] = 30.0
        failures = [m for ok, m in _verdicts(current, _jobs_report()) if not ok]
        assert any("jobs_scaling.warm_jobs1" in m for m in failures)

    def test_custom_floor_is_respected(self):
        report = _jobs_report(warm_jobs4_speedup=2.0)
        verdicts = list(
            check_regression.check(
                report, report, 0.2, 3.0, min_jobs_scaling_speedup=1.5
            )
        )
        assert all(ok for ok, _ in verdicts)

    def test_cold_speedup_below_floor_fails(self):
        verdicts = _verdicts(_jobs_report(cold_jobs4_speedup=1.2), _jobs_report())
        failures = [m for ok, m in verdicts if not ok]
        assert any("cold_jobs4" in m and "speedup" in m for m in failures)

    def test_custom_cold_floor_is_respected(self):
        report = _jobs_report(cold_jobs4_speedup=1.2)
        verdicts = list(
            check_regression.check(
                report, report, 0.2, 3.0, min_cold_jobs_speedup=1.0
            )
        )
        assert all(ok for ok, _ in verdicts)


class TestWriteHeavyGates:
    """The write-path replay gates (all-techniques and write-heavy pairs)
    engage only when the report carries the entries."""

    def test_report_without_entries_emits_no_gate(self):
        verdicts = _verdicts(_report(), _report())
        assert not any("write_heavy" in m for _, m in verdicts)
        assert not any("replay_ls_all" in m for _, m in verdicts)

    def test_healthy_report_passes_all_three(self):
        verdicts = _verdicts(_write_heavy_report(), _write_heavy_report())
        assert all(ok for ok, _ in verdicts)
        for name in (
            "replay_ls_all",
            "replay_ls_write_heavy",
            "replay_ls_write_heavy_all",
        ):
            assert any(name in m and "speedup" in m for _, m in verdicts), name

    def test_each_floor_fails_independently(self):
        for kwargs, needle in (
            ({"ls_all": 3.9}, "replay_ls_all"),
            ({"write_heavy": 4.9}, "replay_ls_write_heavy batch"),
            ({"write_heavy_all": 3.9}, "replay_ls_write_heavy_all"),
        ):
            verdicts = _verdicts(_write_heavy_report(**kwargs), _write_heavy_report())
            failures = [m for ok, m in verdicts if not ok]
            assert any(needle in m for m in failures), (kwargs, failures)

    def test_custom_floors_are_respected(self):
        report = _write_heavy_report(ls_all=2.0, write_heavy=2.0, write_heavy_all=2.0)
        verdicts = list(
            check_regression.check(
                report,
                report,
                0.2,
                1.5,
                min_ls_all_speedup=1.5,
                min_write_heavy_speedup=1.5,
                min_write_heavy_all_speedup=1.5,
            )
        )
        assert all(ok for ok, _ in verdicts)


class TestFiniteLogGates:
    """The finite-log kernel gates (multi-frontier and zoned cleaning)
    engage only when the report carries the entries."""

    def test_report_without_entries_emits_no_gate(self):
        verdicts = _verdicts(_report(), _report())
        assert not any("replay_multifrontier" in m for _, m in verdicts)
        assert not any("replay_cleaning" in m for _, m in verdicts)

    def test_healthy_report_passes_both(self):
        verdicts = _verdicts(_finite_log_report(), _finite_log_report())
        assert all(ok for ok, _ in verdicts)
        for name in ("replay_multifrontier", "replay_cleaning"):
            assert any(name in m and "speedup" in m for _, m in verdicts), name

    def test_each_floor_fails_independently(self):
        for kwargs, needle in (
            ({"multifrontier": 4.9}, "replay_multifrontier"),
            ({"cleaning": 4.9}, "replay_cleaning"),
        ):
            verdicts = _verdicts(_finite_log_report(**kwargs), _finite_log_report())
            failures = [m for ok, m in verdicts if not ok]
            assert any(needle in m for m in failures), (kwargs, failures)

    def test_custom_floors_are_respected(self):
        report = _finite_log_report(multifrontier=2.0, cleaning=2.0)
        verdicts = list(
            check_regression.check(
                report,
                report,
                0.2,
                1.5,
                min_multifrontier_speedup=1.5,
                min_cleaning_speedup=1.5,
            )
        )
        assert all(ok for ok, _ in verdicts)


class TestIngestParallelGate:
    """The parallel-ingestion ratio gate bounds pool overhead; it engages
    only when the report carries an ``ingest_cold_parallel`` entry."""

    def test_report_without_entry_emits_no_gate(self):
        verdicts = _verdicts(_report(), _report())
        assert not any("ingest_cold_parallel" in m for _, m in verdicts)

    def test_healthy_ratio_passes(self):
        verdicts = _verdicts(_ingest_parallel_report(), _ingest_parallel_report())
        assert all(ok for ok, _ in verdicts)
        assert any("ingest_cold_parallel" in m for _, m in verdicts)

    def test_ratio_below_floor_fails(self):
        verdicts = _verdicts(
            _ingest_parallel_report(ratio=0.4), _ingest_parallel_report()
        )
        failures = [m for ok, m in verdicts if not ok]
        assert any("ingest_cold_parallel" in m and "ratio" in m for m in failures)

    def test_custom_floor_is_respected(self):
        report = _ingest_parallel_report(ratio=0.4)
        verdicts = list(
            check_regression.check(
                report, report, 0.2, 3.0, min_ingest_parallel_ratio=0.3
            )
        )
        assert all(ok for ok, _ in verdicts)


class TestMain:
    def test_exit_zero_on_pass_and_one_on_fail(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_report()))

        current.write_text(json.dumps(_report()))
        assert (
            check_regression.main([str(current), "--baseline", str(baseline)]) == 0
        )
        current.write_text(json.dumps(_report(speedup=1.0)))
        assert (
            check_regression.main([str(current), "--baseline", str(baseline)]) == 1
        )
        capsys.readouterr()

    def test_missing_files_fail_cleanly(self, tmp_path, capsys):
        assert check_regression.main([str(tmp_path / "nope.json")]) == 1
        capsys.readouterr()

    def test_baseline_file_is_checked_in_and_valid(self):
        baseline_path = _SCRIPT.parent / "BENCH_baseline.json"
        baseline = json.loads(baseline_path.read_text())
        assert baseline["ops"] >= 1_000_000
        speedup = baseline["results"]["replay_ls"]["batch"]["speedup_vs_reference"]
        assert speedup >= 3.0
        ingest = baseline["results"]["ingest_msr"]
        assert ingest["columnar"]["speedup_vs_reference"] >= 3.0
        assert ingest["warm_store"]["speedup_vs_reference"] >= 10.0
        results = baseline["results"]
        assert results["sweep_fig11"]["sweep"]["speedup_vs_reference"] >= 5.0
        assert (
            results["sweep_cache_ablation"]["sweep"]["speedup_vs_reference"] >= 10.0
        )
        assert (
            results["jobs_scaling"]["warm_jobs4"]["speedup_vs_reference"] >= 2.5
        )
        assert results["replay_ls_all"]["batch"]["speedup_vs_reference"] >= 4.0
        assert (
            results["replay_ls_write_heavy"]["batch"]["speedup_vs_reference"] >= 5.0
        )
        assert (
            results["replay_ls_write_heavy_all"]["batch"]["speedup_vs_reference"]
            >= 4.0
        )
        assert (
            results["replay_multifrontier"]["batch"]["speedup_vs_reference"] >= 5.0
        )
        assert results["replay_cleaning"]["batch"]["speedup_vs_reference"] >= 5.0
        assert results["jobs_scaling"]["cold_jobs4"]["speedup_vs_reference"] >= 1.8
        assert (
            results["ingest_cold_parallel"]["jobs4"]["speedup_vs_reference"] >= 0.6
        )


def _serving_report(
    speedup=6.0,
    group_speedup=1.4,
    ops=1_000_000,
    resyncs=0,
    apply_p99=12.0,
    query_p99=30.0,
    rss=400.0,
):
    return {
        "schema": 1,
        "ops": ops,
        "results": {
            "serving": {
                "ops": ops,
                "reference": {"seconds": 10.0, "ops_per_s": ops / 10.0},
                "binary": {
                    "seconds": round(10.0 / speedup, 3),
                    "speedup_vs_reference": speedup,
                    "resyncs": resyncs,
                    "apply_p99_ms": apply_p99,
                    "query_p99_ms": query_p99,
                },
            },
            "durability": {
                "group_commit": {"speedup_vs_reference": group_speedup},
            },
        },
        "peak_rss_mib": rss,
    }


class TestServingGate:
    def _failures(self, report, **kwargs):
        return [
            msg
            for ok, msg in check_regression.check_serving(report, **kwargs)
            if not ok
        ]

    def test_healthy_report_passes_every_check(self):
        assert self._failures(_serving_report()) == []

    def test_each_floor_fails_independently(self):
        for report, needle in (
            (_serving_report(speedup=4.9), "binary+coalesced"),
            (_serving_report(group_speedup=1.0), "group-commit"),
            (_serving_report(ops=999_999), "serving ops"),
            (_serving_report(resyncs=3), "resyncs"),
            (_serving_report(apply_p99=0.0), "apply latency"),
            (_serving_report(query_p99=None), "live-query latency"),
            (_serving_report(rss=0), "RSS"),
        ):
            failures = self._failures(report)
            assert len(failures) == 1, failures
            assert needle in failures[0]

    def test_custom_floors_are_respected(self):
        report = _serving_report(speedup=3.0, group_speedup=1.05, ops=50_000)
        assert self._failures(
            report,
            min_serving_speedup=2.5,
            min_group_commit_speedup=1.01,
            min_serving_ops=50_000,
        ) == []

    def test_serving_mode_cli_gates_only_the_serving_report(
        self, tmp_path, capsys
    ):
        serving = tmp_path / "serving.json"
        serving.write_text(json.dumps(_serving_report()))
        assert check_regression.main(["--serving", str(serving)]) == 0
        serving.write_text(json.dumps(_serving_report(speedup=2.0)))
        assert check_regression.main(["--serving", str(serving)]) == 1
        capsys.readouterr()

    def test_checked_in_serving_report_satisfies_the_gate(self):
        report = json.loads(
            (_SCRIPT.parent / "BENCH_serving.json").read_text()
        )
        assert all(ok for ok, _ in check_regression.check_serving(report))
