"""Differential oracle: the zoned-cleaning batch kernel vs. the reference.

:class:`~repro.core.cleaning.ZonedCleaningTranslator` is the finite-log
model: appends land in fixed-size zones, invalidations decrement per-zone
live counts, and hitting the clean-trigger watermark launches a cleaning
episode (victim selection + relocation + zone reset).  The batch kernel
splits chunks at episode boundaries and runs the episode through the
translator's own reference code, so these tests demand bit-exactness on

* overwrite-heavy generated workloads and synthetic traces that force
  hundreds of cleaning episodes, under **both** victim policies
  (``greedy`` and ``cost_benefit``),
* Hypothesis request soups over a tight LBA space against a small log
  (cleaning-trigger churn),
* chunk-size independence (episode splits must not be observable),
* checkpoint/restore with cleaning episodes on both sides of the cut, and
* error equality for the log-full / boundary-crossing failure modes.

Every comparison includes the translator's complete ``state_dict()``:
zone write pointers, the per-zone ledger, live counts, allocation order,
age sequence numbers and the cleaning counters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import IncrementalBatchReplay, batch_replay_translator
from repro.core.cleaning import CLEANING_POLICIES, ZonedCleaningTranslator
from repro.core.simulator import replay
from repro.disk.zones import SequentialZoneError
from repro.extentmap.tiers import DEFAULT_KERNEL_TIER, make_address_map, resolve_map_tier
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.workloads import ReadMix, WorkloadSpec, WriteMix, generate_workload

from tests.differential.oracle import (
    assert_translator_matches_reference,
    normalized,
)


def _overwrite_trace(seed: int, total_ops: int = 3000) -> Trace:
    """A small-LBA-space overwrite workload that forces cleaning."""
    spec = WorkloadSpec(
        name="cleaning-differential",
        family="cloudphysics",
        total_ops=total_ops,
        read_fraction=0.3,
        mean_read_kib=16.0,
        mean_write_kib=16.0,
        working_set_mib=2,
        hot_mib=1,
        write_mix=WriteMix(random=0.5, hot_overwrite=0.5),
        read_mix=ReadMix(scan=0.5, random=0.5),
        phases=4,
    )
    return generate_workload(spec, seed=seed)


def _factory(trace, policy="greedy", zone_mib=0.0625, n_zones=12, tier=None):
    def make():
        return ZonedCleaningTranslator(
            frontier_base=trace.max_end,
            zone_mib=zone_mib,
            n_zones=n_zones,
            reserve_zones=2,
            address_map=make_address_map(tier),
            policy=policy,
        )

    return make


@pytest.mark.parametrize("policy", CLEANING_POLICIES)
@pytest.mark.parametrize("seed", (42, 7))
def test_overwrite_workload_matches(policy, seed):
    trace = _overwrite_trace(seed)
    make = _factory(trace, policy=policy, zone_mib=0.25, n_zones=24)
    assert_translator_matches_reference(trace, make)
    # The comparison is only meaningful if cleaning actually ran.
    translator = make()
    replay(trace, translator)
    assert translator.cleaning_stats.cleanings > 0


@pytest.mark.parametrize("policy", CLEANING_POLICIES)
def test_array_map_tier_matches_too(policy):
    trace = _overwrite_trace(seed=42, total_ops=1500)
    assert_translator_matches_reference(
        trace,
        _factory(trace, policy=policy, zone_mib=0.25, n_zones=24),
        make_batch_translator=_factory(
            trace, policy=policy, zone_mib=0.25, n_zones=24,
            tier=resolve_map_tier(DEFAULT_KERNEL_TIER),
        ),
    )


# --- synthetic edge cases ------------------------------------------------

def _trace(requests, name="synthetic"):
    return Trace(requests, name=name)


SYNTHETIC = {
    "empty": _trace([]),
    "single-write": _trace([IORequest.write(0, 8)]),
    "fill-and-overwrite": _trace(
        [IORequest.write((i * 64) % 256, 48) for i in range(64)]
    ),
    "hot-spot-churn": _trace(
        # One hot 64-sector range rewritten until the log wraps many times.
        [IORequest.write((i * 16) % 64, 16) for i in range(160)]
    ),
    "reads-between-cleanings": _trace(
        [
            req
            for i in range(80)
            for req in (
                IORequest.write((i * 32) % 192, 32),
                IORequest.read((i * 24) % 192, 16),
            )
        ]
    ),
    "multi-zone-extent": _trace(
        # Appends longer than a zone never happen (the log splits them),
        # but a mapped extent can span zones via consecutive appends; the
        # invalidation must split its delta per zone.
        [IORequest.write(0, 120), IORequest.write(0, 120), IORequest.read(0, 120)]
    ),
}


@pytest.mark.parametrize("case", sorted(SYNTHETIC))
@pytest.mark.parametrize("policy", CLEANING_POLICIES)
def test_synthetic_edge_cases_match(case, policy):
    trace = SYNTHETIC[case]
    assert_translator_matches_reference(trace, _factory(trace, policy=policy))


@pytest.mark.parametrize("chunk_ops", [1, 3, 7, 64])
def test_chunk_size_is_unobservable(chunk_ops):
    trace = SYNTHETIC["hot-spot-churn"]
    make = _factory(trace, policy="cost_benefit")
    baseline = batch_replay_translator(trace, make())
    rechunked = batch_replay_translator(trace, make(), chunk_ops)
    assert rechunked.stats == baseline.stats
    assert list(rechunked.distances) == list(baseline.distances)
    assert normalized(rechunked.translator.state_dict()) == normalized(
        baseline.translator.state_dict()
    )


def test_log_full_of_live_data_raises_identically():
    # Live data exceeding log capacity is unreclaimable; both paths must
    # fail with the reference message.
    trace = _trace([IORequest.write(i * 16, 16) for i in range(32)], name="full")

    def make():
        return ZonedCleaningTranslator(
            frontier_base=512, zone_mib=0.0078125, n_zones=8, reserve_zones=2
        )

    with pytest.raises(SequentialZoneError) as ref_exc:
        replay(trace, make())
    with pytest.raises(SequentialZoneError) as batch_exc:
        batch_replay_translator(trace, make())
    assert str(batch_exc.value) == str(ref_exc.value)


def test_boundary_crossing_raises_identically():
    trace = _trace([IORequest.read(120, 16)], name="crossing")

    def make():
        return ZonedCleaningTranslator(frontier_base=128, zone_mib=0.0625, n_zones=8)

    with pytest.raises(ValueError) as ref_exc:
        replay(trace, make())
    with pytest.raises(ValueError) as batch_exc:
        batch_replay_translator(trace, make())
    assert str(batch_exc.value) == str(ref_exc.value)


# --- hypothesis + checkpointing -----------------------------------------

_LBA_SPACE = 256
_MAX_LENGTH = 24

_requests = st.lists(
    st.builds(
        lambda is_read, lba, length: (
            IORequest.read(lba, length) if is_read else IORequest.write(lba, length)
        ),
        st.booleans(),
        st.integers(min_value=0, max_value=_LBA_SPACE - _MAX_LENGTH),
        st.integers(min_value=1, max_value=_MAX_LENGTH),
    ),
    max_size=120,
)


def _soup_factory(policy):
    # 24 zones x 64 sectors: live data (<= 256 sectors) always fits, but a
    # write-heavy soup overruns the writable budget and triggers cleaning.
    def make():
        return ZonedCleaningTranslator(
            frontier_base=_LBA_SPACE,
            zone_mib=64 / 2048,
            n_zones=24,
            reserve_zones=2,
            policy=policy,
        )

    return make


@given(requests=_requests, policy=st.sampled_from(CLEANING_POLICIES))
@settings(max_examples=60, deadline=None)
def test_request_soup_matches(requests, policy):
    trace = _trace(requests, name="soup")
    assert_translator_matches_reference(trace, _soup_factory(policy))


@given(
    requests=st.lists(
        st.integers(min_value=0, max_value=_LBA_SPACE - _MAX_LENGTH).map(
            lambda lba: IORequest.write(lba, 16)
        ),
        min_size=40,
        max_size=120,
    ),
    cut_fraction=st.floats(min_value=0.2, max_value=0.8),
    policy=st.sampled_from(CLEANING_POLICIES),
)
@settings(max_examples=25, deadline=None)
def test_checkpoint_restore_with_cleaning_on_both_sides(
    requests, cut_fraction, policy
):
    """Snapshot between cleaning episodes, restore into a fresh translator,
    and demand the continuation is indistinguishable from one-shot."""
    make = _soup_factory(policy)
    oneshot = IncrementalBatchReplay(make(), trace_name="soup")
    oneshot.feed(requests)

    cut = int(len(requests) * cut_fraction)
    engine = IncrementalBatchReplay(make(), trace_name="soup")
    engine.feed(requests[:cut])
    state = engine.state_dict()
    resumed = IncrementalBatchReplay.from_state(make(), state)
    resumed.feed(requests[cut:])

    assert resumed.result().stats == oneshot.result().stats
    assert normalized(resumed.state_dict()) == normalized(oneshot.state_dict())
