"""Differential oracle: the vectorized batch kernels vs. the reference replay.

The batch kernels in :mod:`repro.core.batch` are only allowed to exist
because they are *exactly* equivalent to the per-request pure-Python
simulator — same seek counts, same seek-distance log (sign and order),
same final extent-map state.  These tests enforce that contract on

* generated Table I workloads from both trace families, under every
  technique configuration,
* hand-built synthetic traces targeting the kernel's edge cases (empty
  traces, hole reads, overlap splits, frontier checks), and
* chunk-size independence (the chunk boundary is an implementation
  detail and must never be observable).
"""

from __future__ import annotations

import pytest

from repro.core.batch import (
    BatchUnsupportedError,
    batch_replay,
    batch_replay_translator,
    supports_batch,
)
from repro.core.config import (
    ALL_CONFIGS,
    LS,
    LS_ALL,
    NOLS,
    build_translator,
)
from repro.core.simulator import replay
from repro.core.translators import LogStructuredTranslator
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.workloads import synthesize_workload

from tests.differential.oracle import assert_batch_matches_reference

# Both trace families, mixing read-heavy, write-heavy and scan-flavoured
# entries so every technique (defrag, prefetch, cache) gets exercised.
WORKLOADS = ("usr_0", "src2_2", "hm_1", "w91", "w84", "w20")
SCALE = 0.02
CONFIGS = {c.name: c for c in ALL_CONFIGS}


@pytest.fixture(scope="module")
def traces():
    return {name: synthesize_workload(name, seed=42, scale=SCALE) for name in WORKLOADS}


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_table1_workloads_match(traces, workload, config_name):
    assert_batch_matches_reference(traces[workload], CONFIGS[config_name])


def test_different_seeds_still_match(traces):
    # The oracle must hold for any generated instance, not just seed 42.
    for seed in (7, 1234):
        trace = synthesize_workload("hm_1", seed=seed, scale=SCALE)
        assert_batch_matches_reference(trace, LS_ALL)


# --- synthetic edge cases ------------------------------------------------

def _trace(requests, name="synthetic"):
    return Trace(requests, name=name)


SYNTHETIC = {
    "empty": _trace([]),
    "single-read-hole": _trace([IORequest.read(10, 4)]),
    "single-write": _trace([IORequest.write(0, 8)]),
    "read-after-write": _trace([IORequest.write(0, 8), IORequest.read(0, 8)]),
    "read-spans-hole-and-log": _trace(
        # [0,4) is remapped into the log, [4,8) is a hole at identity.
        [IORequest.write(0, 4), IORequest.read(0, 8)]
    ),
    "overlap-split": _trace(
        # The second write splits the first extent; the read sees 3 pieces.
        [IORequest.write(0, 12), IORequest.write(4, 4), IORequest.read(0, 12)]
    ),
    "rewrite-everything": _trace(
        [IORequest.write(0, 16), IORequest.write(0, 16), IORequest.read(0, 16)]
    ),
    "reads-only": _trace([IORequest.read(i * 8, 8) for i in range(10)]),
    "writes-only": _trace([IORequest.write((i * 37) % 64, 5) for i in range(10)]),
    "sequential-after-scatter": _trace(
        [IORequest.write((i * 29) % 96, 3) for i in range(20)]
        + [IORequest.read(i * 4, 4) for i in range(24)]
    ),
    "repeated-fragmented-read": _trace(
        # Same fragmented range read repeatedly: exercises cache admit/hit
        # and the prefetch window on consecutive resolutions.
        [IORequest.write(0, 32), IORequest.write(8, 8), IORequest.write(20, 4)]
        + [IORequest.read(0, 32) for _ in range(4)]
    ),
}


@pytest.mark.parametrize("case", sorted(SYNTHETIC))
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_synthetic_edge_cases_match(case, config_name):
    assert_batch_matches_reference(SYNTHETIC[case], CONFIGS[config_name])


@pytest.mark.parametrize("chunk_ops", [1, 2, 3, 7, 64])
def test_chunk_size_is_unobservable(traces, chunk_ops):
    trace = traces["src2_2"]
    baseline = batch_replay(trace, LS_ALL)
    rechunked = batch_replay(trace, LS_ALL, chunk_ops=chunk_ops)
    assert rechunked.stats == baseline.stats
    assert list(rechunked.distances) == list(baseline.distances)
    assert list(rechunked.distance_is_read) == list(baseline.distance_is_read)


def test_frontier_crossing_raises_identically():
    trace = _trace([IORequest.read(4, 8)], name="crossing")
    reference = LogStructuredTranslator(frontier_base=8)
    batch = LogStructuredTranslator(frontier_base=8)
    with pytest.raises(ValueError) as ref_exc:
        replay(trace, reference)
    with pytest.raises(ValueError) as batch_exc:
        batch_replay_translator(trace, batch)
    assert str(batch_exc.value) == str(ref_exc.value)


def test_supports_batch_covers_every_stock_config():
    for config in ALL_CONFIGS:
        assert supports_batch(config), config.name


def test_unsupported_translator_is_refused():
    from repro.core.translators import InPlaceTranslator
    from repro.faults.transient import FaultyTranslator, TransientFaultConfig

    trace = _trace([IORequest.write(0, 8)])
    translator = FaultyTranslator(InPlaceTranslator(), TransientFaultConfig())
    with pytest.raises(BatchUnsupportedError) as exc:
        batch_replay_translator(trace, translator)
    assert exc.value.reason == "translator FaultyTranslator"


def test_fast_replay_falls_back_when_recorders_present(traces):
    # replay(fast=True) with a recorder must silently use the reference
    # path — recorders see per-op events the kernels never materialize.
    from repro.core.recorders import SeekLogRecorder

    trace = traces["w91"]
    recorder = SeekLogRecorder()
    fast = replay(trace, build_translator(trace, LS), [recorder], fast=True)
    slow = replay(trace, build_translator(trace, LS))
    assert fast.stats == slow.stats
    assert len(recorder.distances) == (
        fast.stats.read_seeks + fast.stats.write_seeks + fast.stats.defrag_write_seeks
    )


def test_seek_distance_histograms_match(traces):
    # Bucketed distance distributions (what the figures plot) agree too —
    # a coarser but figure-facing view of the distance-log equality above.
    from repro.core.recorders import SeekLogRecorder
    from repro.util.stats import Histogram

    trace = traces["usr_0"]
    recorder = SeekLogRecorder()
    replay(trace, build_translator(trace, LS_ALL), [recorder])
    batch = batch_replay(trace, LS_ALL)

    for bucket_width in (1, 64, 4096):
        reference_hist = Histogram(bucket_width=bucket_width)
        for distance in recorder.read_distances:
            reference_hist.add(distance)
        batch_hist = Histogram(bucket_width=bucket_width)
        for distance in batch.read_distances:
            batch_hist.add(int(distance))
        assert batch_hist.items() == reference_hist.items()


def test_lookup_pieces_matches_lookup():
    # The kernel leans on lookup_pieces(); it must agree with the
    # segment-object lookup() it shortcuts, including the base-class
    # fallback any third-party AddressMap would inherit.
    from repro.extentmap.base import AddressMap
    from repro.extentmap.extent_map import ExtentMap

    extent_map = ExtentMap()
    for i in range(40):
        extent_map.map_range((i * 23) % 128, 1000 + i * 7, 1 + (i % 5))
    for lba in range(0, 140, 3):
        for length in (1, 4, 17):
            via_lookup = [
                (seg.lba if seg.is_hole else seg.pba, seg.length, seg.is_hole)
                for seg in extent_map.lookup(lba, length)
            ]
            assert extent_map.lookup_pieces(lba, length) == via_lookup
            assert AddressMap.lookup_pieces(extent_map, lba, length) == via_lookup


def test_nols_matches_too(traces):
    # The in-place (NoLS) kernel is a separate, fully-vectorized path.
    for workload in WORKLOADS:
        assert_batch_matches_reference(traces[workload], NOLS)
