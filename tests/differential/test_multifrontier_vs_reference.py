"""Differential oracle: the multi-frontier batch kernel vs. the reference.

:class:`~repro.core.multifrontier.MultiFrontierTranslator` routes each
write to a hot or cold frontier via a stateful recency classifier, so its
kernel (:mod:`repro.core.batch`) interleaves scalar classification with
vectorized mapping/classification of everything else.  These tests demand
bit-exactness against the per-request reference on

* generated Table I workloads under the config-level spelling
  (``TechniqueConfig(multi_frontier=...)``) and hand-built translators,
* synthetic traces targeting the kernel's edges (frontier switches,
  batched-run mapping thresholds, reads spanning holes and both regions),
* Hypothesis request soups over a tight LBA space with a tiny recency
  window (maximal hot/cold churn),
* chunk-size independence, and
* checkpoint/restore at arbitrary batch boundaries into fresh translators.

Every comparison includes the translator's complete ``state_dict()`` —
per-frontier cursors, write tallies, switch count, classifier LRU set —
not just the aggregate stats.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    IncrementalBatchReplay,
    batch_replay,
    batch_replay_translator,
    supports_batch,
)
from repro.core.config import MultiFrontierConfig, TechniqueConfig
from repro.core.multifrontier import MultiFrontierTranslator, RecencyClassifier
from repro.core.simulator import replay
from repro.extentmap.tiers import DEFAULT_KERNEL_TIER, make_address_map, resolve_map_tier
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.workloads import synthesize_workload

from tests.differential.oracle import (
    assert_batch_matches_reference,
    assert_translator_matches_reference,
    normalized,
)

WORKLOADS = ("usr_0", "hm_1", "w91", "w20")
SCALE = 0.02


@pytest.fixture(scope="module")
def traces():
    return {name: synthesize_workload(name, seed=42, scale=SCALE) for name in WORKLOADS}


def _region_for(trace) -> int:
    """A per-frontier region comfortably holding every write of ``trace``."""
    return sum(r.length for r in trace if not r.is_read) + 4096


def _factory(trace, window=64, n_frontiers=2, tier=None):
    region = _region_for(trace)

    def make():
        return MultiFrontierTranslator(
            frontier_base=trace.max_end,
            region_sectors=region,
            classifier=RecencyClassifier(window=window, block_sectors=8),
            address_map=make_address_map(tier),
            n_frontiers=n_frontiers,
        )

    return make


@pytest.mark.parametrize("workload", WORKLOADS)
def test_table1_workloads_match(traces, workload):
    trace = traces[workload]
    assert_translator_matches_reference(trace, _factory(trace))


@pytest.mark.parametrize("workload", ("w91", "hm_1"))
def test_array_map_tier_matches_too(traces, workload):
    # The kernel's preferred tier on the batch side, reference tier on the
    # reference side: exactness must not depend on the map implementation.
    trace = traces[workload]
    assert_translator_matches_reference(
        trace,
        _factory(trace),
        make_batch_translator=_factory(trace, tier=resolve_map_tier(DEFAULT_KERNEL_TIER)),
    )


def test_config_level_spelling_matches(traces):
    trace = traces["w91"]
    config = TechniqueConfig(
        name="LS+wolf",
        multi_frontier=MultiFrontierConfig(window=256, block_sectors=8),
    )
    assert supports_batch(config)
    assert_batch_matches_reference(trace, config)


# --- synthetic edge cases ------------------------------------------------

def _trace(requests, name="synthetic"):
    return Trace(requests, name=name)


_HOT = [IORequest.write(0, 8) for _ in range(6)]
_COLD = [IORequest.write(64 + i * 16, 8) for i in range(6)]

SYNTHETIC = {
    "empty": _trace([]),
    "single-write": _trace([IORequest.write(0, 8)]),
    "all-cold-scatter": _trace([IORequest.write((i * 37) % 192, 5) for i in range(24)]),
    "hot-after-cold-switches": _trace(_COLD + _HOT + _COLD + _HOT),
    "interleaved-switch-per-op": _trace(
        [req for pair in zip(_HOT, _COLD) for req in pair]
    ),
    "long-write-run-batched-map": _trace(
        # >= the kernel's batched-run threshold, single frontier throughout.
        [IORequest.write(i * 8, 8) for i in range(40)]
    ),
    "read-spans-hole-and-log": _trace(
        [IORequest.write(0, 4), IORequest.read(0, 8)]
    ),
    "read-after-hot-and-cold": _trace(
        _COLD + _HOT + [IORequest.read(i * 8, 8) for i in range(20)]
    ),
    "rewrite-migrates-frontier": _trace(
        # The same LBA goes cold-frontier first, hot-frontier on rewrite.
        [IORequest.write(0, 16), IORequest.write(0, 16), IORequest.read(0, 16)]
    ),
}


@pytest.mark.parametrize("case", sorted(SYNTHETIC))
def test_synthetic_edge_cases_match(case):
    trace = SYNTHETIC[case]
    assert_translator_matches_reference(trace, _factory(trace, window=2))


def test_three_frontiers_allocate_identically(traces):
    # n_frontiers=3 exercises the per-frontier region arithmetic even
    # though the stock classifier only ever emits classes 0 and 1.
    trace = traces["hm_1"]
    assert_translator_matches_reference(trace, _factory(trace, n_frontiers=3))


@pytest.mark.parametrize("chunk_ops", [1, 3, 7, 64])
def test_chunk_size_is_unobservable(traces, chunk_ops):
    trace = traces["w91"]
    make = _factory(trace)
    baseline = batch_replay_translator(trace, make())
    rechunked = batch_replay_translator(trace, make(), chunk_ops)
    assert rechunked.stats == baseline.stats
    assert list(rechunked.distances) == list(baseline.distances)
    assert list(rechunked.distance_is_read) == list(baseline.distance_is_read)


def test_exhaustion_raises_identically():
    # A region too small for its writes must fail with the reference's
    # message, after applying the identical prefix.
    trace = _trace([IORequest.write(i * 8, 8) for i in range(8)], name="exhaust")

    def make():
        return MultiFrontierTranslator(
            frontier_base=128,
            region_sectors=32,
            classifier=RecencyClassifier(window=2, block_sectors=8),
        )

    with pytest.raises(ValueError) as ref_exc:
        replay(trace, make())
    reference = make()
    with pytest.raises(ValueError):
        replay(trace, reference)
    batch = make()
    with pytest.raises(ValueError) as batch_exc:
        batch_replay_translator(trace, batch)
    assert str(batch_exc.value) == str(ref_exc.value)
    # Frontier bookkeeping is synced before the raise, so the failed
    # engines agree on how far they got.
    assert normalized(batch.state_dict())["frontiers"] == normalized(
        reference.state_dict()
    )["frontiers"]


def test_read_crossing_log_base_raises_identically():
    trace = _trace([IORequest.read(120, 16)], name="crossing")

    def make():
        return MultiFrontierTranslator(frontier_base=128, region_sectors=1024)

    with pytest.raises(ValueError) as ref_exc:
        replay(trace, make())
    with pytest.raises(ValueError) as batch_exc:
        batch_replay_translator(trace, make())
    assert str(batch_exc.value) == str(ref_exc.value)


# --- hypothesis + checkpointing -----------------------------------------

_LBA_SPACE = 256
_MAX_LENGTH = 24

_requests = st.lists(
    st.builds(
        lambda is_read, lba, length: (
            IORequest.read(lba, length) if is_read else IORequest.write(lba, length)
        ),
        st.booleans(),
        st.integers(min_value=0, max_value=_LBA_SPACE - _MAX_LENGTH),
        st.integers(min_value=1, max_value=_MAX_LENGTH),
    ),
    max_size=120,
)


def _soup_factory(window):
    def make():
        return MultiFrontierTranslator(
            frontier_base=_LBA_SPACE,
            region_sectors=65536,
            classifier=RecencyClassifier(window=window, block_sectors=8),
        )

    return make


@given(requests=_requests, window=st.sampled_from([1, 2, 8, 4096]))
@settings(max_examples=60, deadline=None)
def test_request_soup_matches(requests, window):
    trace = _trace(requests, name="soup")
    assert_translator_matches_reference(trace, _soup_factory(window))


@given(
    requests=_requests,
    cuts=st.lists(st.integers(min_value=0, max_value=120), max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_checkpoint_restore_is_invisible(requests, cuts):
    make = _soup_factory(window=4)
    oneshot = IncrementalBatchReplay(make(), trace_name="soup")
    oneshot.feed(requests)

    bounds = sorted({min(c, len(requests)) for c in cuts})
    engine = IncrementalBatchReplay(make(), trace_name="soup")
    last = 0
    for cut in bounds + [len(requests)]:
        engine.feed(requests[last:cut])
        last = cut
        engine = IncrementalBatchReplay.from_state(make(), engine.state_dict())
    assert engine.result().stats == oneshot.result().stats
    assert normalized(engine.state_dict()) == normalized(oneshot.state_dict())
