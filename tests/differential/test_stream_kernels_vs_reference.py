"""Stream-derived analysis kernels vs. the reference recorders.

:func:`~repro.core.stream.stream_windowed_long_seeks` and
:func:`~repro.core.stream.stream_fragment_stats` let fig3/fig10-class
exhibits reuse one recorded plain-LS stream instead of replaying with
recorders attached.  They are only admissible if they agree *exactly*
with :class:`~repro.analysis.temporal.WindowedSeekRecorder` and
:class:`~repro.analysis.popularity.FragmentPopularityRecorder` on the
same replay — these tests are that proof.
"""

from __future__ import annotations

import pytest

from repro.analysis.popularity import FragmentPopularityRecorder
from repro.analysis.temporal import WindowedSeekRecorder
from repro.core.config import LS, build_translator
from repro.core.simulator import replay
from repro.core.stream import (
    record_fragment_stream,
    stream_fragment_stats,
    stream_windowed_long_seeks,
)
from repro.workloads import synthesize_workload

SEED, SCALE = 42, 0.03
WORKLOADS = ("hm_1", "w84", "src2_2")


@pytest.fixture(scope="module", params=WORKLOADS)
def pair(request):
    trace = synthesize_workload(request.param, seed=SEED, scale=SCALE)
    return trace, record_fragment_stream(trace)


@pytest.mark.parametrize("window_ops,min_seek_kib", [(1000, 500.0), (500, 500.0), (250, 100.0)])
def test_windowed_long_seeks_match_recorder(pair, window_ops, min_seek_kib):
    trace, stream = pair
    recorder = WindowedSeekRecorder(window_ops=window_ops, min_seek_kib=min_seek_kib)
    replay(trace, build_translator(trace, LS), [recorder])
    assert (
        stream_windowed_long_seeks(stream, window_ops, min_seek_kib)
        == recorder.series()
    )


def test_fragment_stats_match_recorder(pair):
    trace, stream = pair
    recorder = FragmentPopularityRecorder()
    replay(trace, build_translator(trace, LS), [recorder])
    assert stream_fragment_stats(stream) == recorder.fragment_stats()


def test_fragment_stats_preserve_curve(pair):
    """The popularity curve built from stream stats is the recorder's."""
    from repro.analysis.fast import popularity_curve_fast

    trace, stream = pair
    recorder = FragmentPopularityRecorder()
    replay(trace, build_translator(trace, LS), [recorder])
    want = recorder.curve()
    got = popularity_curve_fast(stream_fragment_stats(stream))
    assert got.access_counts == want.access_counts
    assert got.cumulative_mib == want.cumulative_mib
