"""Differential oracle for the technique kernels and the sweep engine.

Pins the shared-replay layer (:mod:`repro.core.stream` and
:mod:`repro.experiments.sweep`) bit-exact against the reference
per-request simulator:

* **prefetch / cache** (and their combination) via the recorded
  fragment-access stream — Table I workloads from both families,
  hand-built synthetic traces and Hypothesis-generated ones;
* **defrag** via the chunked stateful batch kernel (its oracle lives in
  ``test_batch_vs_reference.py``; here we pin that the sweep engine
  routes defrag points to it and still matches the reference);
* **capacity sweeps** via the stack-distance kernel — every sweep point
  must equal both the single-point stream replay and the reference
  simulator, across block sizes and on adversarial eviction patterns;
* recording **chunk size** must be unobservable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    LS,
    LS_ALL,
    LS_CACHE,
    LS_DEFRAG,
    LS_PREFETCH,
    NOLS,
    PAPER_CONFIGS,
    TechniqueConfig,
)
from repro.core.prefetch import PrefetchConfig
from repro.core.selective_cache import SelectiveCacheConfig
from repro.core.stream import (
    StreamUnsupportedError,
    record_fragment_stream,
    stream_cache_sweep,
    stream_replay,
    supports_cache_sweep,
    supports_stream,
)
from repro.experiments.sweep import SweepEngine
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.workloads import synthesize_workload

from tests.differential.oracle import (
    assert_batch_matches_reference,
    assert_stream_matches_reference,
)

WORKLOADS = ("usr_0", "src2_2", "hm_1", "w91", "w84", "w20")
SCALE = 0.02

#: Every defrag-free configuration the stream kernel claims to cover.
STREAM_CONFIGS = {
    "LS": LS,
    "LS+prefetch": LS_PREFETCH,
    "LS+cache": LS_CACHE,
    "LS+prefetch+cache": TechniqueConfig(
        name="LS+prefetch+cache",
        prefetch=PrefetchConfig(behind_kib=128.0, ahead_kib=128.0, buffer_mib=2.0),
        cache=SelectiveCacheConfig(capacity_mib=8.0),
    ),
    "tiny-windows": TechniqueConfig(
        name="tiny-windows",
        prefetch=PrefetchConfig(behind_kib=4.0, ahead_kib=4.0, buffer_mib=1.0),
    ),
    "tiny-cache": TechniqueConfig(
        name="tiny-cache",
        cache=SelectiveCacheConfig(capacity_mib=1.0, block_sectors=4),
    ),
}

CACHE_SWEEP_MIB = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _cache_configs(sizes=CACHE_SWEEP_MIB, block_sectors=8):
    return [
        TechniqueConfig(
            name=f"cache{mib:g}",
            cache=SelectiveCacheConfig(
                capacity_mib=mib, block_sectors=block_sectors
            ),
        )
        for mib in sizes
    ]


@pytest.fixture(scope="module")
def traces():
    return {
        name: synthesize_workload(name, seed=42, scale=SCALE) for name in WORKLOADS
    }


# --- Table I workloads ---------------------------------------------------


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("config_name", sorted(STREAM_CONFIGS))
def test_table1_workloads_match(traces, workload, config_name):
    assert_stream_matches_reference(traces[workload], STREAM_CONFIGS[config_name])


def test_different_seeds_still_match():
    for seed in (7, 1234):
        trace = synthesize_workload("hm_1", seed=seed, scale=SCALE)
        assert_stream_matches_reference(trace, STREAM_CONFIGS["LS+prefetch+cache"])


# --- synthetic edge cases ------------------------------------------------


def _trace(requests, name="synthetic"):
    return Trace(requests, name=name)


SYNTHETIC = {
    "empty": _trace([]),
    "reads-only-holes": _trace([IORequest.read(i * 8, 8) for i in range(6)]),
    "writes-only": _trace([IORequest.write((i * 37) % 64, 5) for i in range(10)]),
    "repeated-fragmented-read": _trace(
        [IORequest.write(0, 32), IORequest.write(8, 8), IORequest.write(20, 4)]
        + [IORequest.read(0, 32) for _ in range(4)]
    ),
    "cache-evicts-and-returns": _trace(
        # Two disjoint fragmented ranges read alternately: a small cache
        # must evict one while serving the other, repeatedly.
        [IORequest.write(0, 64), IORequest.write(16, 8),
         IORequest.write(128, 64), IORequest.write(144, 8)]
        + [IORequest.read((i % 2) * 128, 64) for i in range(6)]
    ),
    "prefetch-window-chain": _trace(
        # Out-of-order neighbours land close in the log; later in-order
        # reads ride each other's windows.
        [IORequest.write(24, 8), IORequest.write(16, 8), IORequest.write(32, 8)]
        + [IORequest.read(8, 40), IORequest.read(8, 40)]
    ),
}


@pytest.mark.parametrize("case", sorted(SYNTHETIC))
@pytest.mark.parametrize("config_name", sorted(STREAM_CONFIGS))
def test_synthetic_edge_cases_match(case, config_name):
    assert_stream_matches_reference(SYNTHETIC[case], STREAM_CONFIGS[config_name])


# --- Hypothesis ----------------------------------------------------------

_LBA_SPACE = 256
_MAX_LENGTH = 24

_requests = st.lists(
    st.builds(
        lambda is_read, lba, length: (
            IORequest.read(lba, length) if is_read else IORequest.write(lba, length)
        ),
        st.booleans(),
        st.integers(min_value=0, max_value=_LBA_SPACE - _MAX_LENGTH),
        st.integers(min_value=1, max_value=_MAX_LENGTH),
    ),
    max_size=120,
)


@pytest.mark.parametrize(
    "config",
    [STREAM_CONFIGS["LS+prefetch+cache"], STREAM_CONFIGS["tiny-cache"]],
    ids=lambda c: c.name,
)
@given(requests=_requests)
@settings(max_examples=30, deadline=None)
def test_random_traces_match(config, requests):
    assert_stream_matches_reference(_trace(requests, name="hypothesis"), config)


@given(requests=_requests)
@settings(max_examples=25, deadline=None)
def test_random_traces_cache_sweep_matches_single_points(requests):
    trace = _trace(requests, name="hypothesis")
    # A tiny block size relative to the LBA space so small capacities
    # actually evict; exercises the stack-distance kernel's hit/miss edge.
    configs = _cache_configs(sizes=(0.002, 0.004, 0.008, 0.064), block_sectors=2)
    stream = record_fragment_stream(trace)
    swept = stream_cache_sweep(stream, configs)
    for config, result in zip(configs, swept):
        single = stream_replay(stream, config)
        assert result.stats == single.stats, config.name
        assert np.array_equal(result.distances, single.distances), config.name
        assert_stream_matches_reference(trace, config)


# --- recording chunk-size invariance -------------------------------------


@pytest.mark.parametrize("chunk_ops", [1, 2, 3, 7, 64])
def test_recording_chunk_size_is_unobservable(traces, chunk_ops):
    trace = traces["src2_2"]
    baseline = record_fragment_stream(trace)
    rechunked = record_fragment_stream(trace, chunk_ops=chunk_ops)
    assert np.array_equal(rechunked.pba, baseline.pba)
    assert np.array_equal(rechunked.length, baseline.length)
    assert np.array_equal(rechunked.kind, baseline.kind)
    assert np.array_equal(rechunked.group_start, baseline.group_start)
    assert np.array_equal(rechunked.group_size, baseline.group_size)
    assert rechunked.frontier == baseline.frontier
    config = STREAM_CONFIGS["LS+prefetch+cache"]
    a = stream_replay(baseline, config)
    b = stream_replay(rechunked, config)
    assert a.stats == b.stats
    assert np.array_equal(a.distances, b.distances)


# --- capacity sweep vs single points (workload scale) ---------------------


@pytest.mark.parametrize("workload", ("hm_1", "w91", "usr_0"))
def test_cache_sweep_matches_single_points_and_reference(traces, workload):
    trace = traces[workload]
    configs = _cache_configs()
    stream = record_fragment_stream(trace)
    swept = stream_cache_sweep(stream, configs)
    assert len(swept) == len(configs)
    for config, result in zip(configs, swept):
        single = stream_replay(stream, config)
        assert result.stats == single.stats, config.name
        assert np.array_equal(result.distances, single.distances), config.name
        assert np.array_equal(
            result.distance_is_read, single.distance_is_read
        ), config.name
    # Spot-check the extremes against the full reference simulator too.
    assert_stream_matches_reference(trace, configs[0])
    assert_stream_matches_reference(trace, configs[-1])


def test_cache_sweep_monotone_hits(traces):
    # Stack inclusion: a larger cache can never hit less often.
    stream = record_fragment_stream(traces["w91"])
    swept = stream_cache_sweep(stream, _cache_configs())
    hits = [r.stats.cache_fragment_hits for r in swept]
    assert hits == sorted(hits)


def test_cache_sweep_alternate_block_size(traces):
    configs = _cache_configs(sizes=(0.5, 1.0, 4.0, 16.0), block_sectors=16)
    trace = traces["usr_0"]
    stream = record_fragment_stream(trace)
    for config, result in zip(configs, stream_cache_sweep(stream, configs)):
        single = stream_replay(stream, config)
        assert result.stats == single.stats, config.name
    assert_stream_matches_reference(trace, configs[1])


# --- support predicates and refusals -------------------------------------


def test_supports_stream_excludes_defrag_and_nols():
    assert supports_stream(LS)
    assert supports_stream(LS_PREFETCH)
    assert supports_stream(LS_CACHE)
    assert not supports_stream(NOLS)
    assert not supports_stream(LS_DEFRAG)
    assert not supports_stream(LS_ALL)


def test_supports_cache_sweep_requires_cache_only():
    assert supports_cache_sweep(LS_CACHE)
    assert not supports_cache_sweep(LS)
    assert not supports_cache_sweep(LS_PREFETCH)
    assert not supports_cache_sweep(STREAM_CONFIGS["LS+prefetch+cache"])
    assert not supports_cache_sweep(LS_ALL)


def test_unsupported_configs_are_refused(traces):
    stream = record_fragment_stream(traces["hm_1"])
    with pytest.raises(StreamUnsupportedError):
        stream_replay(stream, NOLS)
    with pytest.raises(StreamUnsupportedError):
        stream_replay(stream, LS_ALL)
    with pytest.raises(StreamUnsupportedError):
        stream_cache_sweep(stream, [LS_CACHE, LS_PREFETCH])
    mixed_blocks = [
        TechniqueConfig(name="a", cache=SelectiveCacheConfig(4.0, block_sectors=8)),
        TechniqueConfig(name="b", cache=SelectiveCacheConfig(4.0, block_sectors=16)),
    ]
    with pytest.raises(StreamUnsupportedError):
        stream_cache_sweep(stream, mixed_blocks)


def test_recording_layout_is_reference_plain_ls_layout(traces):
    # The recorded layout translator must sit in the exact plain-LS
    # reference end-state — it is returned to callers as such.
    from repro.core.config import build_translator
    from repro.core.simulator import replay

    from tests.differential.oracle import map_snapshot

    trace = traces["w84"]
    reference = build_translator(trace, LS)
    replay(trace, reference)
    stream = record_fragment_stream(trace)
    assert map_snapshot(stream.layout) == map_snapshot(reference)
    assert stream.layout.frontier == reference.frontier
    assert stream.layout.head.position == reference.head.position


def test_empty_trace_records_empty_stream():
    stream = record_fragment_stream(_trace([], name="empty"))
    assert stream.accesses == 0
    result = stream_replay(stream, STREAM_CONFIGS["LS+prefetch+cache"])
    assert result.head_position is None
    assert result.stats.reads == result.stats.writes == 0
    assert result.distances.size == 0
    swept = stream_cache_sweep(stream, _cache_configs(sizes=(1.0, 64.0)))
    assert all(r.stats.cache_fragment_hits == 0 for r in swept)


# --- the sweep engine, end to end -----------------------------------------


@pytest.mark.parametrize("workload", ("hm_1", "w20"))
def test_sweep_engine_matches_reference(traces, workload):
    trace = traces[workload]
    reference = SweepEngine(seed=42, scale=SCALE, fast=False)
    fast = SweepEngine(seed=42, scale=SCALE, fast=True)
    grid = list(PAPER_CONFIGS) + _cache_configs(sizes=(2.0, 8.0, 32.0)) + [
        NOLS,
        LS_ALL,
        STREAM_CONFIGS["LS+prefetch+cache"],
    ]
    slow = reference.sweep(trace, grid)
    quick = fast.sweep(trace, grid)
    for config, a, b in zip(grid, slow, quick):
        assert a.trace_name == b.trace_name, config.name
        assert a.translator == b.translator, config.name
        assert a.stats == b.stats, config.name


def test_sweep_engine_defrag_points_use_batch_kernel(traces):
    # Defrag mutates the layout: the engine must route it to the batch
    # kernel (whose own oracle is test_batch_vs_reference) — cross-check
    # one grid point end to end here.
    assert_batch_matches_reference(traces["w91"], LS_DEFRAG)
    engine = SweepEngine(seed=42, scale=SCALE, fast=True)
    fast_stats = engine.replay(traces["w91"], LS_DEFRAG).stats
    reference = SweepEngine(seed=42, scale=SCALE, fast=False)
    assert fast_stats == reference.replay(traces["w91"], LS_DEFRAG).stats
