"""Differential oracle: vectorized analysis kernels vs. the reference code.

Every stateless trace-level analysis with a fast path in
:mod:`repro.analysis.fast` must agree *exactly* — identical floats, not
approximately — with the plain-Python reference it shortcuts: the
empirical CDFs are Python ``int / int`` divisions in both, the NoLS
windowed seek counts come from the same seek definition, and the
popularity curve preserves the reference sort's tie ordering.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distances import distance_cdf, fraction_within
from repro.analysis.fast import (
    distance_cdf_fast,
    fraction_of_fragments_in_top_reads_fast,
    fraction_within_fast,
    fragment_cdf_fast,
    fragment_concentration_fast,
    misorder_rate_fast,
    nols_seek_distances,
    nols_windowed_long_seeks,
    popularity_curve_fast,
)
from repro.analysis.fragmentation import (
    fragment_cdf,
    fragment_concentration,
    fraction_of_fragments_in_top_reads,
)
from repro.analysis.misorder import misorder_rate
from repro.analysis.popularity import FragmentPopularityRecorder
from repro.analysis.temporal import WindowedSeekRecorder
from repro.core.config import LS_ALL, NOLS, build_translator
from repro.core.recorders import SeekLogRecorder
from repro.core.simulator import replay
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.workloads import synthesize_workload

WORKLOADS = ("usr_0", "hm_1", "w84")
SCALE = 0.02


@pytest.fixture(scope="module")
def traces():
    return {name: synthesize_workload(name, seed=42, scale=SCALE) for name in WORKLOADS}


hypothesis_traces = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=5_000_000),
        st.integers(min_value=1, max_value=64),
    ),
    max_size=60,
).map(
    lambda triples: Trace(
        [
            IORequest(float(i), OpType.READ if r else OpType.WRITE, lba, length)
            for i, (r, lba, length) in enumerate(triples)
        ]
    )
)

fragment_lists = st.lists(st.integers(min_value=0, max_value=40), max_size=80)
distance_lists = st.lists(
    st.integers(min_value=-(10**8), max_value=10**8), max_size=80
)


# --- fragmentation (Fig. 5) ----------------------------------------------


@given(fragments=fragment_lists)
@settings(max_examples=200, deadline=None)
def test_fragment_cdf_exact(fragments):
    assert fragment_cdf_fast(fragments) == fragment_cdf(fragments)


@given(fragments=fragment_lists)
@settings(max_examples=200, deadline=None)
def test_fragment_concentration_exact(fragments):
    assert fragment_concentration_fast(fragments) == fragment_concentration(
        fragments
    )


@given(
    fragments=fragment_lists,
    top_fraction=st.sampled_from([0.01, 0.2, 0.5, 0.999, 1.0]),
)
@settings(max_examples=200, deadline=None)
def test_top_reads_share_exact(fragments, top_fraction):
    assert fraction_of_fragments_in_top_reads_fast(
        fragments, top_fraction
    ) == fraction_of_fragments_in_top_reads(fragments, top_fraction)


def test_top_reads_validation_matches():
    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            fraction_of_fragments_in_top_reads_fast([2, 3], bad)
        with pytest.raises(ValueError):
            fraction_of_fragments_in_top_reads([2, 3], bad)


# --- distances (Fig. 4) --------------------------------------------------


@given(distances=distance_lists, window_gib=st.sampled_from([0.01, 0.5, 2.0]))
@settings(max_examples=200, deadline=None)
def test_distance_cdf_exact(distances, window_gib):
    assert distance_cdf_fast(distances, window_gib) == distance_cdf(
        distances, window_gib
    )


@given(distances=distance_lists, window_gib=st.sampled_from([0.01, 0.5, 2.0]))
@settings(max_examples=200, deadline=None)
def test_fraction_within_exact(distances, window_gib):
    assert fraction_within_fast(distances, window_gib) == fraction_within(
        distances, window_gib
    )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_distance_cdf_on_replayed_distances(traces, workload):
    recorder = SeekLogRecorder()
    trace = traces[workload]
    replay(trace, build_translator(trace, NOLS), [recorder])
    assert list(nols_seek_distances(trace)) == recorder.distances
    assert distance_cdf_fast(recorder.distances) == distance_cdf(recorder.distances)
    assert fraction_within_fast(recorder.distances, 0.25) == fraction_within(
        recorder.distances, 0.25
    )


# --- temporal windows (Fig. 3) -------------------------------------------


def _windowed_reference(trace, window_ops, min_seek_kib):
    recorder = WindowedSeekRecorder(window_ops=window_ops, min_seek_kib=min_seek_kib)
    replay(trace, build_translator(trace, NOLS), [recorder])
    return recorder.series()


@given(
    trace=hypothesis_traces,
    window_ops=st.sampled_from([1, 3, 7, 1000]),
    min_seek_kib=st.sampled_from([0.0, 4.0, 500.0]),
)
@settings(max_examples=150, deadline=None)
def test_windowed_long_seeks_exact(trace, window_ops, min_seek_kib):
    assert nols_windowed_long_seeks(
        trace, window_ops=window_ops, min_seek_kib=min_seek_kib
    ) == _windowed_reference(trace, window_ops, min_seek_kib)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_windowed_long_seeks_on_archetype(traces, workload):
    trace = traces[workload]
    assert nols_windowed_long_seeks(trace) == _windowed_reference(trace, 1000, 500.0)


def test_windowed_validation_matches_recorder():
    for kwargs in ({"window_ops": 0}, {"min_seek_kib": -1.0}):
        with pytest.raises(ValueError):
            nols_windowed_long_seeks(Trace([]), **kwargs)
        with pytest.raises(ValueError):
            WindowedSeekRecorder(**kwargs)


# --- popularity curve (Fig. 10) ------------------------------------------


def _share_reference(curve, share):
    # The original pre-vectorization walk: running zip until the target.
    total = sum(curve.access_counts)
    if total == 0:
        return 0.0
    target = share * total
    running = 0
    for count, mib in zip(curve.access_counts, curve.cumulative_mib):
        running += count
        if running >= target:
            return mib
    return curve.cumulative_mib[-1] if curve.cumulative_mib else 0.0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_popularity_curve_exact(traces, workload):
    recorder = FragmentPopularityRecorder()
    trace = traces[workload]
    replay(trace, build_translator(trace, LS_ALL), [recorder])
    reference = recorder.curve()
    fast = popularity_curve_fast(recorder.fragment_stats())
    assert fast.access_counts == reference.access_counts
    assert fast.cumulative_mib == reference.cumulative_mib
    for share in (0.1, 0.5, 0.9, 0.999, 1.0):
        assert fast.cache_mib_for_access_share(share) == _share_reference(
            reference, share
        )


@given(
    stats=st.lists(
        st.tuples(st.integers(1, 50), st.integers(1, 10_000)), max_size=60
    ),
    share=st.sampled_from([0.01, 0.5, 1.0]),
)
@settings(max_examples=200, deadline=None)
def test_popularity_share_lookup_exact(stats, share):
    curve = popularity_curve_fast(stats)
    assert curve.cache_mib_for_access_share(share) == _share_reference(curve, share)


def test_empty_popularity_curve():
    curve = popularity_curve_fast([])
    assert curve.access_counts == [] and curve.cumulative_mib == []
    assert curve.total_accesses == 0
    assert curve.cache_mib_for_access_share(0.5) == 0.0


# --- misorder (Fig. 8) ---------------------------------------------------


@pytest.mark.parametrize("workload", WORKLOADS)
def test_misorder_rate_exact_on_archetypes(traces, workload):
    trace = traces[workload]
    assert misorder_rate_fast(trace) == misorder_rate(trace)
