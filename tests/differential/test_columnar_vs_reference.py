"""Differential oracle: the columnar bulk parsers vs. the per-line reference.

Same contract as ``test_batch_vs_reference``: the bulk parsers in
:mod:`repro.trace.columnar` are only allowed to exist because they are
*exactly* equivalent to the per-line parsers — same requests (timestamps
included), same :class:`ParseReport` accounting down to the error samples
and quarantined raw lines, same ``strict`` exceptions.  These tests
enforce that on

* generated Table I workloads round-tripped through every format writer,
* the parse options (``max_ops``, ``disk_number``, ``capacity_sectors``),
* dirty inputs under every error policy, and
* hypothesis-generated line soup that hits the wholesale-fallback path.
"""

from __future__ import annotations

import io
import csv

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.cloudphysics import parse_cloudphysics_file, parse_cloudphysics_lines
from repro.trace.columnar import (
    ColumnarTrace,
    parse_cloudphysics_text,
    parse_csv_text,
    parse_msr_text,
)
from repro.trace.csvio import read_csv_rows, read_csv_trace, write_csv_trace
from repro.trace.errors import TraceParseError, make_report
from repro.trace.msr import parse_msr_file, parse_msr_lines
from repro.trace.writers import write_cloudphysics_trace, write_msr_trace
from repro.workloads import synthesize_workload

WORKLOADS = ("usr_0", "hm_1", "w84")
SCALE = 0.02


@pytest.fixture(scope="module")
def traces():
    return {name: synthesize_workload(name, seed=42, scale=SCALE) for name in WORKLOADS}


def _report_tuple(report):
    issues = lambda lst: [(i.line_no, i.reason, i.line) for i in lst]
    return (
        report.name,
        report.policy,
        report.records,
        report.accepted,
        report.skipped,
        report.quarantined,
        report.filtered,
        issues(report.errors),
        issues(report.quarantine),
    )


def assert_parses_match(columnar, reference):
    assert list(columnar) == list(reference)
    assert columnar.name == reference.name
    assert _report_tuple(columnar.parse_report) == _report_tuple(
        reference.parse_report
    )
    assert columnar.parse_report.balanced


def _csv_reference(text, name="trace", policy="strict", capacity_sectors=None):
    return read_csv_rows(
        csv.reader(io.StringIO(text)),
        trace_name=name,
        policy=policy,
        capacity_sectors=capacity_sectors,
        report=make_report(None, name, policy),
    )


# --- Table I workloads through every format writer -----------------------


@pytest.mark.parametrize("workload", WORKLOADS)
def test_msr_file_round_trip(traces, workload, tmp_path):
    path = tmp_path / f"{workload}.csv"
    write_msr_trace(traces[workload], path)
    columnar = parse_msr_file(path)
    reference = parse_msr_file(path, engine="reference")
    assert isinstance(columnar, ColumnarTrace)
    assert not columnar.materialized  # parse itself is lazy
    assert_parses_match(columnar, reference)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_cloudphysics_file_round_trip(traces, workload, tmp_path):
    path = tmp_path / f"{workload}.csv"
    write_cloudphysics_trace(traces[workload], path)
    assert_parses_match(
        parse_cloudphysics_file(path),
        parse_cloudphysics_file(path, engine="reference"),
    )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_native_csv_file_round_trip(traces, workload, tmp_path):
    path = tmp_path / f"{workload}.csv"
    write_csv_trace(traces[workload], path)
    assert_parses_match(
        read_csv_trace(path), read_csv_trace(path, engine="reference")
    )


def test_invalid_engine_rejected(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("0.0,read,0,8\n")
    with pytest.raises(ValueError, match="engine"):
        read_csv_trace(path, engine="turbo")


# --- parse options -------------------------------------------------------

MSR_CLEAN = "\n".join(
    f"{128166372003061629 + i * 10_000},hm,{i % 3},"
    f"{'Read' if i % 3 else 'Write'},{(i * 7 % 5000) * 512},{(1 + i % 64) * 512},42"
    for i in range(500)
)


@pytest.mark.parametrize("max_ops", [None, 0, 1, 7, 250, 9999])
@pytest.mark.parametrize("disk_number", [None, 0, 2, 99])
def test_msr_options_match(max_ops, disk_number):
    kwargs = dict(max_ops=max_ops, disk_number=disk_number)
    assert_parses_match(
        parse_msr_text(MSR_CLEAN, name="m", **kwargs),
        parse_msr_lines(MSR_CLEAN.split("\n"), name="m", **kwargs),
    )


@pytest.mark.parametrize("capacity_sectors", [None, 10_000, 100_000_000])
def test_capacity_filter_matches(capacity_sectors):
    assert_parses_match(
        parse_msr_text(MSR_CLEAN, name="m", policy="lenient",
                       capacity_sectors=capacity_sectors),
        parse_msr_lines(MSR_CLEAN.split("\n"), name="m", policy="lenient",
                        capacity_sectors=capacity_sectors),
    )


# --- dirty inputs under every policy -------------------------------------

MSR_DIRTY = MSR_CLEAN + (
    "\ngarbage line\n"
    "128166372003061629,hm,1,Read,512,0,9\n"  # zero size
    "bad,hm,1,Read,512,512,9\n"  # non-numeric ticks
    "128166372003061629,hm,1,Peek,512,512,9\n"  # unknown op
    "1,hm,1,Read,512\n"  # too few fields
)

CP_DIRTY = (
    "timestamp_us,op,lba,length\n"
    "100,r,0,8\n"
    "1.5,x,3,4\n"  # unknown op
    "200,w, 16 ,8\n"  # whitespace the reference strips
    "2,r,nine,4\n"  # non-numeric lba
    "3,r,5,0\n"  # zero length
    "300,r,24,8\n"
)

CSV_DIRTY = (
    "timestamp,op,lba,length\n"
    "0.1,read,0,8\n"
    "zz,read,1,1\n"  # bad timestamp
    "0.5,read,-5,1\n"  # negative lba
    "#comment,x\n"
    "0.6,read,2,\n"  # empty length
    "0.7,write,16,8\n"
)


@pytest.mark.parametrize("policy", ["lenient", "quarantine"])
def test_dirty_msr_matches(policy):
    assert_parses_match(
        parse_msr_text(MSR_DIRTY, name="m", policy=policy),
        parse_msr_lines(MSR_DIRTY.split("\n"), name="m", policy=policy),
    )


@pytest.mark.parametrize("policy", ["lenient", "quarantine"])
def test_dirty_cloudphysics_matches(policy):
    assert_parses_match(
        parse_cloudphysics_text(CP_DIRTY, name="c", policy=policy),
        parse_cloudphysics_lines(CP_DIRTY.split("\n"), name="c", policy=policy),
    )


@pytest.mark.parametrize("policy", ["lenient", "quarantine"])
def test_dirty_csv_matches(policy):
    assert_parses_match(
        parse_csv_text(CSV_DIRTY, name="c", policy=policy),
        _csv_reference(CSV_DIRTY, name="c", policy=policy),
    )


def test_strict_errors_identical():
    with pytest.raises(TraceParseError) as columnar_exc:
        parse_msr_text(MSR_DIRTY, name="m", policy="strict")
    with pytest.raises(TraceParseError) as reference_exc:
        parse_msr_lines(MSR_DIRTY.split("\n"), name="m", policy="strict")
    assert str(columnar_exc.value) == str(reference_exc.value)
    assert columnar_exc.value.line_no == reference_exc.value.line_no
    assert columnar_exc.value.line == reference_exc.value.line


# --- fallback-trigger edge cases -----------------------------------------

EDGE_TEXTS = [
    "",  # empty input
    "timestamp_us,op,lba,length\n",  # header only
    "1,r,2,3\n2,w,4,5,6\n",  # ragged: extra field
    "1,r,2,3,9\n2,w,4,5\n",  # ragged: missing field
    "1_000,r,2,3\n",  # Python-only int spelling
    "1,r,1_0,3\n",
    "9223372036854775808,r,2,3\n",  # int64 overflow
    "1,READ      junk,2,3\n",  # token with interior whitespace
    "1," + "r" + " " * 20 + ",2,3\n",  # wider than the fast path's op field
    "۱,r,2,3\n",  # non-ASCII digits (Python-only int spelling)
]


@pytest.mark.parametrize("text", EDGE_TEXTS)
def test_cloudphysics_edge_texts_match(text):
    assert_parses_match(
        parse_cloudphysics_text(text, name="c", policy="lenient"),
        parse_cloudphysics_lines(text.split("\n"), name="c", policy="lenient"),
    )


CSV_EDGE_TEXTS = [
    '0.1,"read",2,3\n',  # quoting: csv.reader semantics
    "0.1,read,2,3\r\n0.2,write,4,5\n",  # carriage returns
    "   \n0.1,read,2,3\n",  # whitespace-only line is a (bad) record
    "0.1,read,2,3",  # no trailing newline
]


@pytest.mark.parametrize("text", CSV_EDGE_TEXTS)
def test_csv_edge_texts_match(text):
    assert_parses_match(
        parse_csv_text(text, name="c", policy="lenient"),
        _csv_reference(text, name="c", policy="lenient"),
    )


# --- hypothesis line soup ------------------------------------------------

_soup_line = st.text(
    alphabet="0123456789,rwRW.#eE+- _\t",
    max_size=30,
)
_clean_line = st.tuples(
    st.integers(0, 10**6),
    st.sampled_from(["r", "w", "Read", "write", "0", "1"]),
    st.integers(0, 10**9),
    st.integers(1, 10**4),
).map(lambda t: f"{t[0]},{t[1]},{t[2]},{t[3]}")
_texts = st.lists(st.one_of(_clean_line, _soup_line), max_size=25).map("\n".join)


@given(text=_texts)
@settings(max_examples=200, deadline=None)
def test_cloudphysics_soup_matches(text):
    assert_parses_match(
        parse_cloudphysics_text(text, name="s", policy="lenient"),
        parse_cloudphysics_lines(text.split("\n"), name="s", policy="lenient"),
    )


@given(text=_texts, policy=st.sampled_from(["lenient", "quarantine"]))
@settings(max_examples=200, deadline=None)
def test_csv_soup_matches(text, policy):
    assert_parses_match(
        parse_csv_text(text, name="s", policy=policy),
        _csv_reference(text, name="s", policy=policy),
    )
