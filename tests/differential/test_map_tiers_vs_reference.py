"""Extent-map tiers are unobservable: array tier == extent tier, exactly.

The ``REPRO_EXTENT_MAP`` environment variable forces one
:mod:`repro.extentmap.tiers` tier everywhere — reference simulator, batch
kernels, stream recording, service checkpoints.  These tests pin the
tier contract from every consumer's side:

* batch replay under either tier matches the reference simulator *and*
  produces tier-identical results (stats, seek log, extent map, head);
* fragment-stream recording takes a different code path per tier
  (run-split batched vs. per-op scalar) yet must emit bit-identical
  streams;
* checkpoint state crosses tiers: a ``state_dict`` saved from an
  array-tier engine restores into an extent-tier translator (and vice
  versa) and continues bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import IncrementalBatchReplay, batch_replay
from repro.core.config import LS, LS_ALL, PAPER_CONFIGS, build_translator_for_base
from repro.core.stream import record_fragment_stream
from repro.extentmap.tiers import ENV_TIER, MAP_TIERS
from repro.trace.record import IORequest
from repro.trace.trace import Trace

from tests.differential.oracle import (
    assert_batch_matches_reference,
    map_snapshot,
)


def _churn_trace(n_ops: int = 600, space: int = 512) -> Trace:
    """Deterministic read/write mix over a tight LBA space (max churn)."""
    rng = np.random.default_rng(1234)
    requests = []
    for i in range(n_ops):
        lba = int(rng.integers(0, space - 32))
        length = int(rng.integers(1, 32))
        if rng.random() < 0.55:
            requests.append(IORequest.read(lba, length))
        else:
            requests.append(IORequest.write(lba, length))
    return Trace(requests, name="tier-churn")


@pytest.fixture(scope="module")
def trace():
    return _churn_trace()


@pytest.mark.parametrize("tier", MAP_TIERS)
@pytest.mark.parametrize("config", list(PAPER_CONFIGS), ids=lambda c: c.name)
def test_batch_matches_reference_under_forced_tier(
    trace, config, tier, monkeypatch
):
    monkeypatch.setenv(ENV_TIER, tier)
    assert_batch_matches_reference(trace, config)


@pytest.mark.parametrize("config", list(PAPER_CONFIGS), ids=lambda c: c.name)
def test_batch_replay_identical_across_tiers(trace, config, monkeypatch):
    results = {}
    for tier in MAP_TIERS:
        monkeypatch.setenv(ENV_TIER, tier)
        results[tier] = batch_replay(trace, config)
    extent, array = results["extent"], results["array"]
    assert extent.stats == array.stats
    assert np.array_equal(extent.distances, array.distances)
    assert np.array_equal(extent.distance_is_read, array.distance_is_read)
    assert extent.translator.head.position == array.translator.head.position
    assert map_snapshot(extent.translator) == map_snapshot(array.translator)
    assert extent.translator.frontier == array.translator.frontier


def test_stream_recording_identical_across_tiers(trace, monkeypatch):
    """The array tier records via run-split batch calls, the extent tier
    via the per-op scalar loop; the streams must be bit-identical."""
    streams = {}
    for tier in MAP_TIERS:
        monkeypatch.setenv(ENV_TIER, tier)
        streams[tier] = record_fragment_stream(trace)
    extent, array = streams["extent"], streams["array"]
    for column in ("pba", "length", "kind", "op_index", "group_start", "group_size"):
        got, want = getattr(array, column), getattr(extent, column)
        assert got.dtype == want.dtype, column
        assert np.array_equal(got, want), column
    for counter in (
        "frontier_base", "frontier", "reads", "writes",
        "sectors_read", "sectors_written", "read_fragments", "fragmented_reads",
    ):
        assert getattr(array, counter) == getattr(extent, counter), counter
    assert map_snapshot(array.layout) == map_snapshot(extent.layout)
    assert array.layout.head.position == extent.layout.head.position


def test_stream_recording_raises_identically_across_tiers():
    """The batched recorder pre-scans for frontier-base violations; the
    scalar loop hits them mid-replay.  Same exception, same message.

    ``record_fragment_stream`` sizes the log at ``trace.max_end`` so the
    public entry can never violate; drive the recorders directly with an
    undersized translator to pin the parity.
    """
    from repro.core.stream import _record_stream_batched, _record_stream_scalar
    from repro.core.translators import LogStructuredTranslator

    trace = Trace(
        [IORequest.write(0, 8), IORequest.read(900, 200)], name="crosser"
    )
    messages = {}
    for label, record in (
        ("scalar", lambda t: _record_stream_scalar(trace, t, 8192)),
        ("batched", lambda t: _record_stream_batched(trace, t)),
    ):
        translator = LogStructuredTranslator(frontier_base=512)
        with pytest.raises(ValueError) as exc_info:
            record(translator)
        messages[label] = str(exc_info.value)
    assert messages["scalar"] == messages["batched"]


@pytest.mark.parametrize(
    "save_tier,restore_tier", [("array", "extent"), ("extent", "array")]
)
def test_checkpoint_state_crosses_tiers(trace, save_tier, restore_tier):
    """A state_dict written by one tier restores into the other and the
    replay continues bit-identically — checkpoints outlive tier choices."""
    frontier_base = trace.max_end
    oneshot = IncrementalBatchReplay(
        build_translator_for_base(frontier_base, LS_ALL, save_tier),
        trace_name=trace.name,
    )
    oneshot.feed(trace.requests)

    half = len(trace.requests) // 2
    first = IncrementalBatchReplay(
        build_translator_for_base(frontier_base, LS_ALL, save_tier),
        trace_name=trace.name,
    )
    first.feed(trace.requests[:half])
    resumed = IncrementalBatchReplay.from_state(
        build_translator_for_base(frontier_base, LS_ALL, restore_tier),
        first.state_dict(),
    )
    resumed.feed(trace.requests[half:])

    got, want = resumed.result(), oneshot.result()
    assert got.run_result.stats == want.run_result.stats
    assert np.array_equal(got.distances, want.distances)
    assert map_snapshot(resumed.translator) == map_snapshot(oneshot.translator)
    assert resumed.translator.frontier == oneshot.translator.frontier
    assert resumed.translator.head.position == oneshot.translator.head.position


@pytest.mark.parametrize("config", [LS, LS_ALL], ids=lambda c: c.name)
def test_chunk_size_is_unobservable_on_array_tier(trace, config, monkeypatch):
    """Chunked feeding must not change array-tier results (run splitting
    and overlay flush points move with the chunk boundaries)."""
    monkeypatch.setenv(ENV_TIER, "array")
    whole = batch_replay(trace, config)
    chunked = batch_replay(trace, config, chunk_ops=37)
    assert whole.stats == chunked.stats
    assert np.array_equal(whole.distances, chunked.distances)
    assert map_snapshot(whole.translator) == map_snapshot(chunked.translator)
