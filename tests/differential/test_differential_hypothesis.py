"""Property-based half of the differential oracle.

Hypothesis builds arbitrary small traces over a compact LBA space (so
overlaps, rewrites and hole/mapped boundaries occur constantly) and the
oracle demands the batch kernels reproduce the reference replay exactly.
Shrinking then hands back a minimal counterexample trace, which is how
kernel bugs in chunk stitching or piece merging would surface here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import batch_replay
from repro.core.config import ALL_CONFIGS, LS_ALL
from repro.trace.record import IORequest
from repro.trace.trace import Trace

from tests.differential.oracle import assert_batch_matches_reference

# A tight LBA space maximizes extent-map churn per op: most writes
# overlap earlier ones and most reads straddle holes and log extents.
_LBA_SPACE = 256
_MAX_LENGTH = 24

_requests = st.lists(
    st.builds(
        lambda is_read, lba, length: (
            IORequest.read(lba, length) if is_read else IORequest.write(lba, length)
        ),
        st.booleans(),
        st.integers(min_value=0, max_value=_LBA_SPACE - _MAX_LENGTH),
        st.integers(min_value=1, max_value=_MAX_LENGTH),
    ),
    max_size=120,
)


def _trace(requests):
    return Trace(requests, name="hypothesis")


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
@given(requests=_requests)
@settings(max_examples=40, deadline=None)
def test_random_traces_match(config, requests):
    assert_batch_matches_reference(_trace(requests), config)


@given(
    requests=_requests,
    chunk_ops=st.integers(min_value=1, max_value=33),
)
@settings(max_examples=40, deadline=None)
def test_random_traces_chunk_invariant(requests, chunk_ops):
    trace = _trace(requests)
    baseline = batch_replay(trace, LS_ALL)
    rechunked = batch_replay(trace, LS_ALL, chunk_ops=chunk_ops)
    assert rechunked.stats == baseline.stats
    assert list(rechunked.distances) == list(baseline.distances)
    assert list(rechunked.distance_is_read) == list(baseline.distance_is_read)
