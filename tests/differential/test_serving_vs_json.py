"""Differential oracle for the serving data plane (PR 9).

The binary + coalesced path earns its throughput only if it is
*indistinguishable* from the PR 6 JSON path in every observable:

* a coalesced group commit leaves the session in exactly the state N
  per-batch applies would have (same queries, same stats);
* a daemon serving a pipelined binary client converges to the same
  state as one serving a sequential JSON client — and both match an
  offline replay of the same columns;
* ``kill -9`` mid-group recovers byte-identically (a group WAL record
  expands to the same ops the per-batch records would have held);
* overload sheds + client resend converge to the reference state with
  no ops lost or double-applied.
"""

import numpy as np
import pytest

from repro.core.config import LS, LS_ALL
from repro.load.driver import TenantLoad, run_load
from repro.service.client import ReplayClient
from repro.service.daemon import DaemonConfig
from repro.service.harness import DaemonThread
from repro.service.session import ReplaySession
from repro.service.wire import encode_payload
from tests.service.helpers import (
    CAPACITY,
    batches,
    make_columns,
    reference_queries,
    session_queries,
)

QUERY_KINDS = ("applied", "stats", "saf", "fragment_cdf", "seek_budget")


def jsonify(queries: dict) -> dict:
    """Session-level query results as a daemon client would see them
    (the socket's JSON hop turns tuples into lists)."""
    import json

    return json.loads(json.dumps(queries))


def group_payload(batch_list):
    """(counts, payload) for a run of (seq, is_read, lba, length) batches."""
    counts = [len(b[1]) for b in batch_list]
    payload = b"".join(encode_payload(*b[1:]) for b in batch_list)
    return counts, payload


@pytest.mark.parametrize("group_size", [1, 3, 16])
def test_group_commit_equals_per_batch(tmp_path, group_size):
    columns = make_columns(1600, seed=11)
    all_batches = batches(columns, 100)

    per_batch = ReplaySession.create(
        "pb", tmp_path / "pb", LS_ALL, CAPACITY, checkpoint_interval_ops=10**9
    )
    for seq, is_read, lba, length in all_batches:
        per_batch.apply_batch(seq, is_read, lba, length)

    grouped = ReplaySession.create(
        "gp", tmp_path / "gp", LS_ALL, CAPACITY, checkpoint_interval_ops=10**9
    )
    for start in range(0, len(all_batches), group_size):
        run = all_batches[start : start + group_size]
        counts, payload = group_payload(run)
        responses = grouped.apply_group_payload(run[0][0], counts, payload)
        assert [r["seq"] for r in responses] == [b[0] for b in run]
        assert all(r["ok"] and not r["duplicate"] for r in responses)

    assert session_queries(grouped) == session_queries(per_batch)
    assert grouped.stats() == per_batch.stats()
    per_batch.close()
    grouped.close()


def test_group_commit_acks_duplicates_like_sequential(tmp_path):
    columns = make_columns(600, seed=13)
    all_batches = batches(columns, 100)
    session = ReplaySession.create(
        "t", tmp_path / "t", LS, CAPACITY, checkpoint_interval_ops=10**9
    )
    counts, payload = group_payload(all_batches[:4])
    session.apply_group_payload(1, counts, payload)

    # Resend a group whose head overlaps already-applied seqs: the tail
    # applies, the head acks as duplicate — exactly the sequential
    # contract the client's resync path relies on.
    counts, payload = group_payload(all_batches[2:])
    responses = session.apply_group_payload(3, counts, payload)
    assert [r["duplicate"] for r in responses] == [True, True, False, False]
    assert session.applied_seq == 6

    reference = ReplaySession.create(
        "ref", tmp_path / "ref", LS, CAPACITY, checkpoint_interval_ops=10**9
    )
    for seq, is_read, lba, length in all_batches:
        reference.apply_batch(seq, is_read, lba, length)
    assert session_queries(session) == session_queries(reference)
    session.close()
    reference.close()


def test_kill9_mid_group_recovers_byte_identical(tmp_path):
    """Crash after group commits, with a torn record at the WAL tail."""
    columns = make_columns(900, seed=5)
    all_batches = batches(columns, 100)
    expected = reference_queries(
        tmp_path / "ref", LS_ALL, columns, batch_ops=100
    )

    root = tmp_path / "crashed"
    session = ReplaySession.create(
        "t", root, LS_ALL, CAPACITY, checkpoint_interval_ops=250
    )
    # Two groups of three: an auto-checkpoint lands inside (250-op
    # interval), so recovery replays a group-record tail on top of it.
    for start in (0, 3):
        counts, payload = group_payload(all_batches[start : start + 3])
        session.apply_group_payload(start + 1, counts, payload)
    with open(session._journal._segment, "ab") as handle:
        handle.write(b"\x31GJR\x00torn-group")
    del session  # kill -9: no close, no final checkpoint

    recovered = ReplaySession.open(
        "t", root, LS_ALL, CAPACITY, checkpoint_interval_ops=250
    )
    assert recovered.applied_seq == 6
    for seq, is_read, lba, length in all_batches[6:]:
        recovered.apply_batch(seq, is_read, lba, length)
    assert session_queries(recovered) == expected
    recovered.close()


@pytest.mark.slow
def test_binary_pipelined_daemon_matches_json_sequential(tmp_path):
    """Same columns through both wires of a live daemon == offline replay."""
    columns = make_columns(4000, seed=21)
    all_batches = batches(columns, 250)
    expected = jsonify(
        reference_queries(tmp_path / "ref", LS, columns, batch_ops=250)
    )

    server = DaemonThread(
        tmp_path / "state", config=DaemonConfig(port=0, queue_depth=64)
    )
    port = server.start()
    try:
        with ReplayClient("127.0.0.1", port, "json_t", wire="json") as json_c:
            json_c.open(LS, CAPACITY)
            for _, is_read, lba, length in all_batches:
                json_c.apply_with_retry(is_read, lba, length)
            json_queries = {k: json_c.query(k) for k in QUERY_KINDS}

        with ReplayClient("127.0.0.1", port, "bin_t", wire="bin") as bin_c:
            bin_c.open(LS, CAPACITY)
            result = bin_c.apply_stream(
                (b[1:] for b in all_batches), window=16
            )
            assert result["batches"] == len(all_batches)
            bin_queries = {k: bin_c.query(k) for k in QUERY_KINDS}
    finally:
        server.stop()

    assert bin_queries == expected
    assert json_queries == expected


@pytest.mark.slow
def test_overload_shed_and_resend_converge(tmp_path):
    """A queue two deep against a 16-wide window must shed; the client's
    resync+resend must still land every op exactly once."""
    columns = make_columns(4000, seed=33)
    all_batches = batches(columns, 100)
    expected = jsonify(
        reference_queries(tmp_path / "ref", LS, columns, batch_ops=100)
    )

    server = DaemonThread(
        tmp_path / "state",
        config=DaemonConfig(port=0, queue_depth=2, coalesce_batches=4),
    )
    port = server.start()
    try:
        with ReplayClient("127.0.0.1", port, "t", wire="bin") as client:
            client.open(LS, CAPACITY)
            result = client.apply_stream(
                (b[1:] for b in all_batches), window=16
            )
            live = {k: client.query(k) for k in QUERY_KINDS}
    finally:
        server.stop()

    assert result["batches"] == len(all_batches)
    assert result["resyncs"] > 0, "queue_depth=2 never shed a 16-wide window"
    assert live == expected


@pytest.mark.slow
def test_load_driver_run_is_replayable_offline(tmp_path):
    """The harness's own mixture stream through the daemon == offline.

    This is what makes `repro load` a *differential* workload, not just
    a throughput toy: every run it drives is reproducible from
    (components, seed, ops) after the fact.
    """
    spec = TenantLoad(
        name="t0",
        components=(("hm_1", 0.8), ("usr_1", 0.2)),
        config=LS,
        total_ops=6_000,
        batch_ops=500,
        wire="bin",
        window=8,
        seed=29,
    )
    server = DaemonThread(
        tmp_path / "state", config=DaemonConfig(port=0, queue_depth=64)
    )
    port = server.start()
    try:
        report = run_load(
            "127.0.0.1", port, [spec], live_queries=False
        )
        assert report.resyncs == 0
        with ReplayClient("127.0.0.1", port, "t0") as client:
            live_stats = client.query("stats")
    finally:
        server.stop()

    from repro.load.mixture import build_mixture

    is_read, lba, length, capacity = build_mixture(
        spec.components, spec.total_ops, seed=spec.seed
    )
    offline = ReplaySession.create(
        "offline", tmp_path / "offline", LS, capacity,
        checkpoint_interval_ops=10**9,
    )
    for i in range(0, spec.total_ops, spec.batch_ops):
        stop = min(i + spec.batch_ops, spec.total_ops)
        n = len(lba)
        idx = np.arange(i, stop) % n  # driver cycles its base columns
        offline.apply_batch(
            i // spec.batch_ops + 1, is_read[idx], lba[idx], length[idx]
        )
    assert live_stats == offline.query("stats")
    offline.close()
