"""The differential oracle: batch kernel vs. reference replay, exactly.

Every assertion here is *equality*, not tolerance: the batch kernels
(:mod:`repro.core.batch`) claim to reproduce the auditable pure-Python
replay bit for bit, and this helper is the single place that claim is
checked — aggregate stats, the per-seek distance log (with directions),
the final extent-map state, the write frontier and the head position.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import DEFAULT_CHUNK_OPS, batch_replay, batch_replay_translator
from repro.core.config import TechniqueConfig, build_translator
from repro.core.recorders import SeekLogRecorder
from repro.core.simulator import Simulator
from repro.core.translators import LogStructuredTranslator
from repro.trace.trace import Trace


def map_snapshot(translator) -> list:
    """The extent map as comparable (lba, pba, length) tuples."""
    return [(e.lba, e.pba, e.length) for e in translator.address_map]


def normalized(value):
    """State-dict value with numpy containers collapsed to plain Python.

    ``state_dict()`` mixes plain scalars/lists with int64 arrays (the
    extent-map export); comparing two snapshots element-wise needs both
    sides in one representation.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, dict):
        return {key: normalized(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [normalized(item) for item in value]
    return value


def assert_translator_matches_reference(
    trace: Trace,
    make_translator,
    make_batch_translator=None,
    chunk_ops: int = DEFAULT_CHUNK_OPS,
) -> None:
    """Replay ``trace`` through two identically-constructed translators —
    reference :class:`Simulator` vs :func:`batch_replay_translator` — and
    demand exactness.

    This is the translator-level twin of
    :func:`assert_batch_matches_reference` for translators with their own
    kernels but no :class:`TechniqueConfig` spelling of every knob
    (multi-frontier, zoned cleaning).  Beyond stats/distances/directions,
    the *complete checkpoint state* (``state_dict()``) must agree: for the
    cleaning translator that pins the zone ledger, live counts, allocation
    order and cleaning counters; for multi-frontier the per-frontier
    cursors, write tallies and classifier recency set.

    ``make_batch_translator`` defaults to ``make_translator``; pass a
    different factory to drive the kernel on another (exact) extent-map
    tier than the reference.
    """
    reference_translator = make_translator()
    recorder = SeekLogRecorder()
    reference = Simulator(recorders=[recorder]).run(trace, reference_translator)

    batch_translator = (make_batch_translator or make_translator)()
    batch = batch_replay_translator(trace, batch_translator, chunk_ops)

    label = f"{trace.name}/{type(reference_translator).__name__}"
    assert batch.run_result.trace_name == reference.trace_name, label
    assert batch.run_result.translator == reference.translator, label
    assert batch.stats == reference.stats, (
        f"{label}: stats diverge\nreference={reference.stats}\nbatch={batch.stats}"
    )
    assert list(batch.distances) == recorder.distances, (
        f"{label}: seek-distance logs diverge"
    )
    assert list(batch.distance_is_read) == [r.is_read for r in recorder.records], (
        f"{label}: seek directions diverge"
    )
    ref_state = normalized(reference_translator.state_dict())
    batch_state = normalized(batch_translator.state_dict())
    assert batch_state.keys() == ref_state.keys(), label
    for key in ref_state:
        assert batch_state[key] == ref_state[key], (
            f"{label}: state_dict[{key!r}] diverges\n"
            f"reference={ref_state[key]!r}\nbatch={batch_state[key]!r}"
        )


def assert_batch_matches_reference(trace: Trace, config: TechniqueConfig) -> None:
    """Replay ``trace`` both ways under ``config`` and demand exactness."""
    reference_translator = build_translator(trace, config)
    recorder = SeekLogRecorder()
    reference = Simulator(recorders=[recorder]).run(trace, reference_translator)

    batch = batch_replay(trace, config)

    label = f"{trace.name}/{config.name}"
    assert batch.run_result.trace_name == reference.trace_name, label
    assert batch.run_result.translator == reference.translator, label
    assert batch.stats == reference.stats, (
        f"{label}: stats diverge\nreference={reference.stats}\nbatch={batch.stats}"
    )
    assert list(batch.distances) == recorder.distances, (
        f"{label}: seek-distance logs diverge"
    )
    assert list(batch.distance_is_read) == [r.is_read for r in recorder.records], (
        f"{label}: seek directions diverge"
    )
    assert (
        batch.translator.head.position == reference_translator.head.position
    ), f"{label}: final head positions diverge"
    if isinstance(reference_translator, LogStructuredTranslator):
        assert map_snapshot(batch.translator) == map_snapshot(
            reference_translator
        ), f"{label}: final extent maps diverge"
        assert (
            batch.translator.frontier == reference_translator.frontier
        ), f"{label}: final frontiers diverge"
        # Technique-internal state must track too: it feeds later decisions.
        for attribute in ("defrag", "prefetcher", "cache"):
            ref_part = getattr(reference_translator, attribute)
            batch_part = getattr(batch.translator, attribute)
            assert (ref_part is None) == (batch_part is None), label
        if reference_translator.cache is not None:
            assert batch.translator.cache.hits == reference_translator.cache.hits
            assert batch.translator.cache.misses == reference_translator.cache.misses
            assert (
                batch.translator.cache.used_bytes
                == reference_translator.cache.used_bytes
            )
        if reference_translator.prefetcher is not None:
            assert (
                batch.translator.prefetcher.window_reads
                == reference_translator.prefetcher.window_reads
            )
        if reference_translator.defrag is not None:
            assert (
                batch.translator.defrag.tracked_ranges
                == reference_translator.defrag.tracked_ranges
            )


def assert_stream_matches_reference(
    trace: Trace, config: TechniqueConfig, chunk_ops: int = 8192
) -> None:
    """Record + stream-evaluate ``trace`` under ``config``; demand exactness.

    The stream kernels (:mod:`repro.core.stream`) cover the defrag-free
    configurations; this oracle checks the same surface as the batch one —
    stats, distance log with directions, head position — plus the recorded
    layout translator against the reference end-state (cache/prefetch never
    remap, so the plain-LS layout *is* the reference layout).
    """
    from repro.core.stream import record_fragment_stream, stream_replay

    reference_translator = build_translator(trace, config)
    recorder = SeekLogRecorder()
    reference = Simulator(recorders=[recorder]).run(trace, reference_translator)

    stream = record_fragment_stream(trace, chunk_ops=chunk_ops)
    result = stream_replay(stream, config)

    label = f"{trace.name}/{config.name} (stream)"
    assert result.run_result.trace_name == reference.trace_name, label
    assert result.run_result.translator == reference.translator, label
    assert result.stats == reference.stats, (
        f"{label}: stats diverge\nreference={reference.stats}\nstream={result.stats}"
    )
    assert list(result.distances) == recorder.distances, (
        f"{label}: seek-distance logs diverge"
    )
    assert list(result.distance_is_read) == [r.is_read for r in recorder.records], (
        f"{label}: seek directions diverge"
    )
    assert result.head_position == reference_translator.head.position, (
        f"{label}: final head positions diverge"
    )
    assert result.frontier == reference_translator.frontier, (
        f"{label}: final frontiers diverge"
    )
    assert map_snapshot(stream.layout) == map_snapshot(reference_translator), (
        f"{label}: final extent maps diverge"
    )
    assert stream.layout.frontier == reference_translator.frontier, label
    if reference_translator.cache is not None:
        assert result.cache is not None, label
        assert result.cache.hits == reference_translator.cache.hits, label
        assert result.cache.misses == reference_translator.cache.misses, label
        assert (
            result.cache.used_bytes == reference_translator.cache.used_bytes
        ), label
    else:
        assert result.cache is None, label
    if reference_translator.prefetcher is not None:
        assert result.prefetcher is not None, label
        assert (
            result.prefetcher.window_reads
            == reference_translator.prefetcher.window_reads
        ), label
    else:
        assert result.prefetcher is None, label
