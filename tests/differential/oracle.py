"""The differential oracle: batch kernel vs. reference replay, exactly.

Every assertion here is *equality*, not tolerance: the batch kernels
(:mod:`repro.core.batch`) claim to reproduce the auditable pure-Python
replay bit for bit, and this helper is the single place that claim is
checked — aggregate stats, the per-seek distance log (with directions),
the final extent-map state, the write frontier and the head position.
"""

from __future__ import annotations

from repro.core.batch import batch_replay
from repro.core.config import TechniqueConfig, build_translator
from repro.core.recorders import SeekLogRecorder
from repro.core.simulator import Simulator
from repro.core.translators import LogStructuredTranslator
from repro.trace.trace import Trace


def map_snapshot(translator) -> list:
    """The extent map as comparable (lba, pba, length) tuples."""
    return [(e.lba, e.pba, e.length) for e in translator.address_map]


def assert_batch_matches_reference(trace: Trace, config: TechniqueConfig) -> None:
    """Replay ``trace`` both ways under ``config`` and demand exactness."""
    reference_translator = build_translator(trace, config)
    recorder = SeekLogRecorder()
    reference = Simulator(recorders=[recorder]).run(trace, reference_translator)

    batch = batch_replay(trace, config)

    label = f"{trace.name}/{config.name}"
    assert batch.run_result.trace_name == reference.trace_name, label
    assert batch.run_result.translator == reference.translator, label
    assert batch.stats == reference.stats, (
        f"{label}: stats diverge\nreference={reference.stats}\nbatch={batch.stats}"
    )
    assert list(batch.distances) == recorder.distances, (
        f"{label}: seek-distance logs diverge"
    )
    assert list(batch.distance_is_read) == [r.is_read for r in recorder.records], (
        f"{label}: seek directions diverge"
    )
    assert (
        batch.translator.head.position == reference_translator.head.position
    ), f"{label}: final head positions diverge"
    if isinstance(reference_translator, LogStructuredTranslator):
        assert map_snapshot(batch.translator) == map_snapshot(
            reference_translator
        ), f"{label}: final extent maps diverge"
        assert (
            batch.translator.frontier == reference_translator.frontier
        ), f"{label}: final frontiers diverge"
        # Technique-internal state must track too: it feeds later decisions.
        for attribute in ("defrag", "prefetcher", "cache"):
            ref_part = getattr(reference_translator, attribute)
            batch_part = getattr(batch.translator, attribute)
            assert (ref_part is None) == (batch_part is None), label
        if reference_translator.cache is not None:
            assert batch.translator.cache.hits == reference_translator.cache.hits
            assert batch.translator.cache.misses == reference_translator.cache.misses
            assert (
                batch.translator.cache.used_bytes
                == reference_translator.cache.used_bytes
            )
        if reference_translator.prefetcher is not None:
            assert (
                batch.translator.prefetcher.window_reads
                == reference_translator.prefetcher.window_reads
            )
        if reference_translator.defrag is not None:
            assert (
                batch.translator.defrag.tracked_ranges
                == reference_translator.defrag.tracked_ranges
            )


def assert_stream_matches_reference(
    trace: Trace, config: TechniqueConfig, chunk_ops: int = 8192
) -> None:
    """Record + stream-evaluate ``trace`` under ``config``; demand exactness.

    The stream kernels (:mod:`repro.core.stream`) cover the defrag-free
    configurations; this oracle checks the same surface as the batch one —
    stats, distance log with directions, head position — plus the recorded
    layout translator against the reference end-state (cache/prefetch never
    remap, so the plain-LS layout *is* the reference layout).
    """
    from repro.core.stream import record_fragment_stream, stream_replay

    reference_translator = build_translator(trace, config)
    recorder = SeekLogRecorder()
    reference = Simulator(recorders=[recorder]).run(trace, reference_translator)

    stream = record_fragment_stream(trace, chunk_ops=chunk_ops)
    result = stream_replay(stream, config)

    label = f"{trace.name}/{config.name} (stream)"
    assert result.run_result.trace_name == reference.trace_name, label
    assert result.run_result.translator == reference.translator, label
    assert result.stats == reference.stats, (
        f"{label}: stats diverge\nreference={reference.stats}\nstream={result.stats}"
    )
    assert list(result.distances) == recorder.distances, (
        f"{label}: seek-distance logs diverge"
    )
    assert list(result.distance_is_read) == [r.is_read for r in recorder.records], (
        f"{label}: seek directions diverge"
    )
    assert result.head_position == reference_translator.head.position, (
        f"{label}: final head positions diverge"
    )
    assert result.frontier == reference_translator.frontier, (
        f"{label}: final frontiers diverge"
    )
    assert map_snapshot(stream.layout) == map_snapshot(reference_translator), (
        f"{label}: final extent maps diverge"
    )
    assert stream.layout.frontier == reference_translator.frontier, label
    if reference_translator.cache is not None:
        assert result.cache is not None, label
        assert result.cache.hits == reference_translator.cache.hits, label
        assert result.cache.misses == reference_translator.cache.misses, label
        assert (
            result.cache.used_bytes == reference_translator.cache.used_bytes
        ), label
    else:
        assert result.cache is None, label
    if reference_translator.prefetcher is not None:
        assert result.prefetcher is not None, label
        assert (
            result.prefetcher.window_reads
            == reference_translator.prefetcher.window_reads
        ), label
    else:
        assert result.prefetcher is None, label
