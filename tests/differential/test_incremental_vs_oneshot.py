"""Checkpoint/restore is invisible: resumed replay == one-shot replay.

The streaming service's whole recovery story rests on one property of
:class:`repro.core.batch.IncrementalBatchReplay`: exporting
``state_dict()`` at *any* batch boundary, serializing it, and restoring
it with ``from_state()`` into a **fresh translator** must continue the
replay bit-identically — same counters, same seek-distance log, same
fragment histogram, same extent map.  Hypothesis drives that property
with arbitrary small traces over a tight LBA space (maximal extent-map
churn) and arbitrary checkpoint boundaries, including back-to-back
checkpoints (empty segments), a checkpoint before the first op, and one
after the last.

Two serialization paths are exercised:

* an in-memory byte round-trip through the checkpoint codec's
  array-split + JSON skeleton (every array crosses a real ``.npy``
  byte-stream, every scalar crosses JSON), and
* the real on-disk :class:`repro.service.checkpoint.CheckpointStore`
  (atomic entry commit, checksum verification, prune).
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import IncrementalBatchReplay
from repro.core.config import LS, LS_ALL, NOLS, build_translator_for_base
from repro.service.checkpoint import CheckpointStore, _join_arrays, _split_arrays
from repro.trace.record import IORequest

# A tight LBA space maximizes overlap/rewrite churn per op (matches the
# existing differential hypothesis suite).
_LBA_SPACE = 256
_MAX_LENGTH = 24
_FRONTIER_BASE = _LBA_SPACE

_requests = st.lists(
    st.builds(
        lambda is_read, lba, length: (
            IORequest.read(lba, length) if is_read else IORequest.write(lba, length)
        ),
        st.booleans(),
        st.integers(min_value=0, max_value=_LBA_SPACE - _MAX_LENGTH),
        st.integers(min_value=1, max_value=_MAX_LENGTH),
    ),
    max_size=120,
)


@st.composite
def _replay_case(draw):
    """A request stream plus arbitrary checkpoint boundaries within it."""
    requests = draw(_requests)
    cuts = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(requests)),
            max_size=6,
        )
    )
    return requests, sorted(set(cuts))


def _segments(requests, cuts):
    bounds = [0] + list(cuts) + [len(requests)]
    return [requests[a:b] for a, b in zip(bounds, bounds[1:])]


def _serialize_roundtrip(state: dict) -> dict:
    """Push ``state_dict`` output through real byte serialization.

    Arrays go through an actual ``.npy`` byte stream (``np.save`` /
    ``np.load``), the skeleton through JSON — the same split the on-disk
    checkpoint codec uses, so nothing survives by object identity.
    """
    arrays = {}
    skeleton = _split_arrays(state, "", arrays)
    skeleton = json.loads(json.dumps(skeleton, sort_keys=True))
    restored_arrays = {}
    for key, array in arrays.items():
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(array))
        buffer.seek(0)
        restored_arrays[key] = np.load(buffer)
    return _join_arrays(skeleton, restored_arrays)


def _engine(config):
    return IncrementalBatchReplay(
        build_translator_for_base(_FRONTIER_BASE, config),
        trace_name="hypothesis",
        track_fragments=True,
    )


def _assert_state_identical(got, want, path=""):
    """Bit-level equality over the nested state dict (dtype included)."""
    assert type(got) is type(want) or (
        isinstance(got, (int, bool)) and isinstance(want, (int, bool))
    ), f"{path}: {type(got).__name__} != {type(want).__name__}"
    if isinstance(want, np.ndarray):
        assert got.dtype == want.dtype, path
        assert np.array_equal(got, want), path
    elif isinstance(want, dict):
        assert got.keys() == want.keys(), path
        for key in want:
            _assert_state_identical(got[key], want[key], f"{path}.{key}")
    elif isinstance(want, (list, tuple)):
        assert len(got) == len(want), path
        for i, (g, w) in enumerate(zip(got, want)):
            _assert_state_identical(g, w, f"{path}[{i}]")
    else:
        assert got == want, path


def _assert_engines_identical(resumed, oneshot):
    assert resumed.ops_applied == oneshot.ops_applied
    assert resumed.fragment_hist == oneshot.fragment_hist
    got, want = resumed.result(), oneshot.result()
    assert got.run_result.stats == want.run_result.stats
    assert got.distances.dtype == want.distances.dtype
    assert np.array_equal(got.distances, want.distances)
    assert np.array_equal(got.distance_is_read, want.distance_is_read)
    _assert_state_identical(resumed.state_dict(), oneshot.state_dict())


@pytest.mark.parametrize("config", [NOLS, LS, LS_ALL], ids=lambda c: c.name)
@given(case=_replay_case())
@settings(max_examples=30, deadline=None)
def test_resume_at_arbitrary_boundaries_is_bit_identical(config, case):
    requests, cuts = case
    oneshot = _engine(config)
    oneshot.feed(requests)

    # At every cut: snapshot, serialize through real bytes, restore into
    # a FRESH translator, and continue — repeatedly, in a chain.
    engine = _engine(config)
    for segment in _segments(requests, cuts):
        engine.feed(segment)
        state = _serialize_roundtrip(engine.state_dict())
        engine = IncrementalBatchReplay.from_state(
            build_translator_for_base(_FRONTIER_BASE, config), state
        )
    _assert_engines_identical(engine, oneshot)


@given(case=_replay_case())
@settings(max_examples=10, deadline=None)
def test_resume_through_on_disk_checkpoint_store(case, tmp_path_factory):
    """Same property through the real on-disk checkpoint entry format."""
    requests, cuts = case
    oneshot = _engine(LS_ALL)
    oneshot.feed(requests)

    root = tmp_path_factory.mktemp("ckpt")
    engine = _engine(LS_ALL)
    for i, segment in enumerate(_segments(requests, cuts)):
        engine.feed(segment)
        store = CheckpointStore(root / f"chain-{i}")
        store.save(i, engine.state_dict())
        state = store.load(i)
        engine = IncrementalBatchReplay.from_state(
            build_translator_for_base(_FRONTIER_BASE, LS_ALL), state
        )
    _assert_engines_identical(engine, oneshot)
