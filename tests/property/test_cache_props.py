"""Property tests on the caching substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.cache.prefetch_buffer import PrefetchBuffer

lru_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "touch", "invalidate", "query"]),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=64),
    ),
    max_size=80,
)


class TestLRUProperties:
    @given(ops=lru_ops, capacity_blocks=st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_capacity_never_exceeded(self, ops, capacity_blocks):
        cache = LRUCache(capacity_bytes=capacity_blocks * 8 * 512, block_sectors=8)
        for op, pba, length in ops:
            if op == "insert":
                cache.insert_range(pba, length)
            elif op == "touch":
                cache.touch_range(pba, length)
            elif op == "invalidate":
                cache.invalidate_range(pba, length)
            else:
                cache.contains_range(pba, length)
            assert cache.used_blocks <= capacity_blocks

    @given(ops=lru_ops)
    @settings(max_examples=150, deadline=None)
    def test_matches_reference_model(self, ops):
        """LRU semantics vs a brute-force recency-list model."""
        cache = LRUCache(capacity_bytes=4 * 8 * 512, block_sectors=8)
        model = []  # blocks, LRU first

        def blocks_of(pba, length):
            return list(range(pba // 8, (pba + length - 1) // 8 + 1))

        for op, pba, length in ops:
            blocks = blocks_of(pba, length)
            if op == "insert":
                cache.insert_range(pba, length)
                for b in blocks:
                    if b in model:
                        model.remove(b)
                    model.append(b)
                del model[:-4]
            elif op == "touch":
                cache.touch_range(pba, length)
                for b in blocks:
                    if b in model:
                        model.remove(b)
                        model.append(b)
            elif op == "invalidate":
                cache.invalidate_range(pba, length)
                model = [b for b in model if b not in blocks]
            else:
                assert cache.contains_range(pba, length) == all(
                    b in model for b in blocks
                )
            assert sorted(cache) == sorted(model)


windows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=600),
    ),
    max_size=40,
)


class TestPrefetchBufferProperties:
    @given(ws=windows, capacity=st.integers(min_value=100, max_value=2000))
    @settings(max_examples=150, deadline=None)
    def test_used_never_exceeds_capacity(self, ws, capacity):
        buf = PrefetchBuffer(capacity)
        for start, length in ws:
            buf.add_window(start, start + length)
            assert buf.used_sectors <= capacity

    @given(ws=windows)
    @settings(max_examples=150, deadline=None)
    def test_covers_iff_some_window_contains(self, ws):
        buf = PrefetchBuffer(100_000)  # large: no eviction
        kept = []
        for start, length in ws:
            buf.add_window(start, start + length)
            kept.append((start, start + length))
        for start, end in kept:
            assert buf.covers(start, end - start)
        assert not buf.covers(20_001, 5)
