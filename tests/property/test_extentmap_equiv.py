"""Property tests: ExtentMap must agree with the BlockMap specification.

BlockMap is trivially correct (one dict entry per sector); ExtentMap is the
optimized production structure.  Any divergence on any operation sequence
is a bug in ExtentMap's split/trim/merge logic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extentmap.block_map import BlockMap
from repro.extentmap.extent_map import ExtentMap

ADDRESS_SPACE = 256

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),  # lba
        st.integers(min_value=1, max_value=32),                 # length
        st.integers(min_value=0, max_value=10_000),             # pba
    ),
    min_size=0,
    max_size=40,
)

queries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),
        st.integers(min_value=1, max_value=64),
    ),
    min_size=1,
    max_size=10,
)


def build_maps(operations):
    emap, bmap = ExtentMap(), BlockMap()
    for lba, length, pba in operations:
        emap.map_range(lba, pba, length)
        bmap.map_range(lba, pba, length)
    return emap, bmap


class TestEquivalence:
    @given(ops=ops, qs=queries)
    @settings(max_examples=200, deadline=None)
    def test_lookup_equivalence(self, ops, qs):
        emap, bmap = build_maps(ops)
        for lba, length in qs:
            assert emap.lookup(lba, length) == bmap.lookup(lba, length)

    @given(ops=ops)
    @settings(max_examples=200, deadline=None)
    def test_mapped_sector_count_equivalence(self, ops):
        emap, bmap = build_maps(ops)
        assert emap.mapped_sector_count() == bmap.mapped_sector_count()

    @given(ops=ops)
    @settings(max_examples=200, deadline=None)
    def test_full_space_lookup_equivalence(self, ops):
        emap, bmap = build_maps(ops)
        assert emap.lookup(0, ADDRESS_SPACE + 64) == bmap.lookup(0, ADDRESS_SPACE + 64)


class TestExtentMapInvariants:
    @given(ops=ops)
    @settings(max_examples=200, deadline=None)
    def test_extents_sorted_non_overlapping(self, ops):
        emap, _ = build_maps(ops)
        extents = list(emap)
        for a, b in zip(extents, extents[1:]):
            assert a.lba_end <= b.lba

    @given(ops=ops)
    @settings(max_examples=200, deadline=None)
    def test_no_mergeable_neighbours_remain(self, ops):
        # The map must keep itself canonical: adjacent extents that are
        # contiguous in both spaces would under-count fragmentation.
        emap, _ = build_maps(ops)
        extents = list(emap)
        for a, b in zip(extents, extents[1:]):
            assert not (a.lba_end == b.lba and a.pba_end == b.pba)

    @given(ops=ops, qs=queries)
    @settings(max_examples=100, deadline=None)
    def test_lookup_tiles_request_exactly(self, ops, qs):
        emap, _ = build_maps(ops)
        for lba, length in qs:
            segments = emap.lookup(lba, length)
            assert segments[0].lba == lba
            assert segments[-1].lba_end == lba + length
            for a, b in zip(segments, segments[1:]):
                assert a.lba_end == b.lba

    @given(ops=ops)
    @settings(max_examples=100, deadline=None)
    def test_last_write_wins(self, ops):
        emap, _ = build_maps(ops)
        # For every sector, the mapping must reflect the latest write
        # covering it.
        latest = {}
        for lba, length, pba in ops:
            for offset in range(length):
                latest[lba + offset] = pba + offset
        for sector, expected_pba in latest.items():
            [segment] = emap.lookup(sector, 1)
            assert segment.pba == expected_pba
