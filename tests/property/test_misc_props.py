"""Property tests on heads, seek-time monotonicity, analysis helpers and
workload-generator determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fragmentation import fragment_concentration
from repro.disk.head import DiskHead
from repro.disk.seek_time import SeekTimeModel
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.util.stats import empirical_cdf
from repro.workloads.generator import generate_workload
from repro.workloads.spec import WorkloadSpec


class TestDiskHeadProperties:
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=1, max_value=64),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_seek_iff_discontiguous(self, accesses):
        head = DiskHead()
        position = None
        for pba, length in accesses:
            event = head.access(pba, length)
            expected_seek = position is not None and pba != position
            assert event.seek == expected_seek
            if expected_seek:
                assert event.distance == pba - position
            else:
                assert event.distance == 0
            position = pba + length
            assert head.position == position


class TestSeekTimeProperties:
    @given(distance=st.integers(min_value=1, max_value=10**10))
    @settings(max_examples=200, deadline=None)
    def test_non_negative_and_symmetric_long(self, distance):
        model = SeekTimeModel()
        assert model.seek_ms(distance) >= 0.0
        if model.geometry.tracks_spanned(distance) > model.short_seek_tracks:
            assert model.seek_ms(distance) == model.seek_ms(-distance)

    @given(
        d1=st.integers(min_value=1, max_value=10**9),
        d2=st.integers(min_value=1, max_value=10**9),
    )
    @settings(max_examples=200, deadline=None)
    def test_long_regime_monotone(self, d1, d2):
        # Monotonicity only holds among long seeks: a short forward skip is
        # paid in rotational pass-over time and can legitimately cost more
        # than a minimal head seek (true of real drives too).
        model = SeekTimeModel()
        lo, hi = sorted((d1, d2))
        if model.geometry.tracks_spanned(lo) > model.short_seek_tracks:
            assert model.seek_ms(lo) <= model.seek_ms(hi) + 1e-9


class TestAnalysisProperties:
    @given(values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
    @settings(max_examples=200, deadline=None)
    def test_empirical_cdf_is_valid(self, values):
        cdf = empirical_cdf(values)
        fractions = [f for _, f in cdf]
        xs = [x for x, _ in cdf]
        assert xs == sorted(set(values))
        assert fractions == sorted(fractions)
        assert abs(fractions[-1] - 1.0) < 1e-12

    @given(frags=st.lists(st.integers(min_value=2, max_value=100), min_size=1, max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_concentration_curve_valid(self, frags):
        curve = fragment_concentration(frags)
        assert curve[-1] == (1.0, 1.0)
        # Concave: every prefix holds at least its proportional share.
        for frac_reads, frac_frags in curve:
            assert frac_frags >= frac_reads - 1e-9


class TestGeneratorDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_trace_pure_function_of_seed(self, seed):
        spec = WorkloadSpec(
            name="prop",
            family="msr",
            total_ops=200,
            read_fraction=0.5,
            mean_read_kib=8.0,
            mean_write_kib=8.0,
            working_set_mib=16,
            hot_mib=4,
            phases=2,
        )
        a = generate_workload(spec, seed=seed)
        b = generate_workload(spec, seed=seed)
        assert list(a.requests) == list(b.requests)
        for request in a:
            assert isinstance(request, IORequest)
            assert request.op in (OpType.READ, OpType.WRITE)
