"""Property tests on translator invariants.

Core guarantees under arbitrary request sequences:

* the log never rewrites a physical sector (append-only frontier);
* reads always resolve the latest data (map correctness through the
  translator);
* the in-place baseline is exactly the identity translation;
* seek-reduction techniques never change *what* is read, only the seeks;
* prefetching and caching never increase an outcome's seek count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    LS,
    LS_CACHE,
    LS_DEFRAG,
    LS_PREFETCH,
    NOLS,
    build_translator,
)
from repro.core.simulator import replay
from repro.core.translators import InPlaceTranslator, LogStructuredTranslator
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace

SPACE = 512

requests = st.lists(
    st.tuples(
        st.booleans(),                                   # is_write
        st.integers(min_value=0, max_value=SPACE - 1),   # lba
        st.integers(min_value=1, max_value=32),          # length
    ),
    min_size=1,
    max_size=60,
).map(
    lambda triples: Trace(
        [
            IORequest(
                float(i) * 1e-3,
                OpType.WRITE if is_write else OpType.READ,
                lba,
                min(length, SPACE - lba),
            )
            for i, (is_write, lba, length) in enumerate(triples)
            if lba < SPACE
        ],
        name="prop",
    )
)


class TestLogAppendOnly:
    @given(trace=requests)
    @settings(max_examples=150, deadline=None)
    def test_frontier_monotone_and_writes_contiguous(self, trace):
        t = LogStructuredTranslator(frontier_base=SPACE)
        expected_frontier = SPACE
        for request in trace:
            outcome = t.submit(request)
            if request.is_write:
                assert outcome.accesses[0].pba == expected_frontier
                expected_frontier += request.length
            assert t.frontier == expected_frontier

    @given(trace=requests)
    @settings(max_examples=150, deadline=None)
    def test_reads_resolve_latest_write(self, trace):
        t = LogStructuredTranslator(frontier_base=SPACE)
        # Shadow model: sector -> pba where its latest copy lives.
        shadow = {}
        frontier = SPACE
        for request in trace:
            outcome = t.submit(request)
            if request.is_write:
                for offset in range(request.length):
                    shadow[request.lba + offset] = frontier + offset
                frontier += request.length
            else:
                covered = {}
                for access in outcome.accesses:
                    # map access back to lba range: accesses are in lba order
                    pass
                # Instead verify piecewise via a fresh lookup:
                for segment in t.address_map.lookup(request.lba, request.length):
                    for offset in range(segment.length):
                        sector = segment.lba + offset
                        expected = shadow.get(sector, sector)
                        actual = (
                            sector if segment.is_hole else segment.pba + offset
                        )
                        assert actual == expected


class TestBaselineIdentity:
    @given(trace=requests)
    @settings(max_examples=100, deadline=None)
    def test_in_place_is_identity(self, trace):
        t = InPlaceTranslator()
        for request in trace:
            outcome = t.submit(request)
            assert len(outcome.accesses) == 1
            assert outcome.accesses[0].pba == request.lba


class TestTechniquesPreserveData:
    @given(trace=requests)
    @settings(max_examples=60, deadline=None)
    def test_all_configs_serve_same_logical_bytes(self, trace):
        # For every read, the set of (lba-offset -> physical source run)
        # may differ across configs (defrag relocates), but the *latest
        # write* must always win.  We verify via the map: after the full
        # replay, each config's map must resolve every sector to data
        # written by the same (latest) write, tracked via a shadow model
        # on the plain-LS replay.
        results = {}
        for config in (LS, LS_DEFRAG, LS_PREFETCH, LS_CACHE):
            translator = build_translator(trace, config)
            stats = replay(trace, translator).stats
            results[config.name] = stats
        base = results["LS"]
        for name, stats in results.items():
            assert stats.reads == base.reads
            assert stats.writes == base.writes
            assert stats.sectors_read == base.sectors_read

    @given(trace=requests)
    @settings(max_examples=60, deadline=None)
    def test_passive_techniques_bounded_by_hits(self, trace):
        # Serving a fragment from buffer/cache skips a head movement; in
        # the worst case each skip costs one extra seek later (the skipped
        # piece was exactly head-contiguous), so the provable bound is
        # LS seeks + hits.  In practice hits overwhelmingly remove seeks —
        # the calibrated-workload integration tests assert the decrease.
        ls = replay(trace, build_translator(trace, LS)).stats
        prefetch = replay(trace, build_translator(trace, LS_PREFETCH)).stats
        cache = replay(trace, build_translator(trace, LS_CACHE)).stats
        assert prefetch.total_seeks <= ls.total_seeks + prefetch.buffer_fragment_hits
        assert cache.total_seeks <= ls.total_seeks + cache.cache_fragment_hits

    @given(trace=requests)
    @settings(max_examples=60, deadline=None)
    def test_nols_seeks_independent_of_order_model(self, trace):
        # Sanity: NoLS total seeks are bounded by op count - 1.
        stats = replay(trace, build_translator(trace, NOLS)).stats
        assert stats.total_seeks <= max(0, stats.ops - 1)
