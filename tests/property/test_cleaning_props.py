"""Property tests: cleaning must never lose or corrupt the mapping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cleaning import ZonedCleaningTranslator
from repro.trace.record import IORequest

SPACE = 512          # logical sectors
ZONE_MIB = 0.0625    # 128-sector zones
N_ZONES = 6          # 768-sector log for a 512-sector logical space

write_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SPACE - 1),
        st.integers(min_value=1, max_value=32),
    ),
    min_size=1,
    max_size=120,
)


def build(writes):
    translator = ZonedCleaningTranslator(
        frontier_base=SPACE,
        zone_mib=ZONE_MIB,
        n_zones=N_ZONES,
        reserve_zones=2,
    )
    written = set()
    for lba, length in writes:
        length = min(length, SPACE - lba)
        if length <= 0:
            continue
        translator.submit(IORequest.write(lba, length))
        written.update(range(lba, lba + length))
    return translator, written


class TestCleaningPreservesMapping:
    @given(writes=write_sequences)
    @settings(max_examples=120, deadline=None)
    def test_written_sectors_stay_mapped(self, writes):
        translator, written = build(writes)
        segments = translator.address_map().lookup(0, SPACE)
        mapped = set()
        for segment in segments:
            if not segment.is_hole:
                mapped.update(range(segment.lba, segment.lba_end))
        assert mapped == written

    @given(writes=write_sequences)
    @settings(max_examples=120, deadline=None)
    def test_live_accounting_matches_map(self, writes):
        translator, written = build(writes)
        assert translator.live_sectors() == len(written)

    @given(writes=write_sequences)
    @settings(max_examples=120, deadline=None)
    def test_mapped_pbas_inside_open_log_zones(self, writes):
        # A mapped extent may legitimately span a zone boundary (writes
        # flow contiguously from one zone into the next and the map merges
        # them), so the invariant is checked zone-piece by zone-piece:
        # every mapped sector must lie below its zone's write pointer.
        translator, _ = build(writes)
        zones = translator._zones
        for segment in translator.address_map().lookup(0, SPACE):
            if segment.is_hole:
                continue
            pba = segment.pba - SPACE
            end = pba + segment.length
            assert 0 <= pba and end <= translator.log_capacity_sectors
            cursor = pba
            while cursor < end:
                zone = zones.zone_for(cursor)
                piece_end = min(end, zone.end)
                assert piece_end <= zone.write_pointer
                cursor = piece_end

    @given(writes=write_sequences)
    @settings(max_examples=120, deadline=None)
    def test_waf_at_least_one(self, writes):
        translator, _ = build(writes)
        assert translator.cleaning_stats.write_amplification >= 1.0

    @given(writes=write_sequences)
    @settings(max_examples=60, deadline=None)
    def test_reads_after_churn_resolve_single_copy(self, writes):
        translator, written = build(writes)
        for sector in sorted(written)[:20]:
            outcome = translator.submit(IORequest.read(sector, 1))
            assert outcome.fragments == 1
            assert not outcome.accesses[0].hole
