"""Stateful (rule-based) property machines.

Hypothesis drives arbitrary interleavings of operations against the
production structures while a trivially-correct model shadows them —
catching ordering-dependent bugs that example-based and sequence-based
tests miss.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core.translators import LogStructuredTranslator
from repro.extentmap.block_map import BlockMap
from repro.extentmap.extent_map import ExtentMap
from repro.trace.record import IORequest

SPACE = 128


class ExtentMapMachine(RuleBasedStateMachine):
    """ExtentMap must track the BlockMap executable spec at every step."""

    def __init__(self):
        super().__init__()
        self.emap = ExtentMap()
        self.bmap = BlockMap()
        self.next_pba = 1000

    @rule(
        lba=st.integers(min_value=0, max_value=SPACE - 1),
        length=st.integers(min_value=1, max_value=24),
    )
    def map_fresh(self, lba, length):
        self.emap.map_range(lba, self.next_pba, length)
        self.bmap.map_range(lba, self.next_pba, length)
        self.next_pba += length

    @rule(
        lba=st.integers(min_value=0, max_value=SPACE - 1),
        length=st.integers(min_value=1, max_value=24),
        pba=st.integers(min_value=0, max_value=500),
    )
    def map_aliased(self, lba, length, pba):
        # Reusing physical addresses exercises merge logic aggressively.
        self.emap.map_range(lba, pba, length)
        self.bmap.map_range(lba, pba, length)

    @rule(
        lba=st.integers(min_value=0, max_value=SPACE - 1),
        length=st.integers(min_value=1, max_value=48),
    )
    def lookup_agrees(self, lba, length):
        assert self.emap.lookup(lba, length) == self.bmap.lookup(lba, length)

    @invariant()
    def sector_counts_agree(self):
        assert self.emap.mapped_sector_count() == self.bmap.mapped_sector_count()

    @invariant()
    def extents_canonical(self):
        extents = list(self.emap)
        for a, b in zip(extents, extents[1:]):
            assert a.lba_end <= b.lba
            assert not (a.lba_end == b.lba and a.pba_end == b.pba)


ExtentMapMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestExtentMapMachine = ExtentMapMachine.TestCase


class TranslatorMachine(RuleBasedStateMachine):
    """The log-structured translator must serve the latest data always."""

    def __init__(self):
        super().__init__()
        self.translator = LogStructuredTranslator(frontier_base=SPACE)
        self.shadow = {}  # sector -> pba of latest copy
        self.frontier = SPACE

    @rule(
        lba=st.integers(min_value=0, max_value=SPACE - 1),
        length=st.integers(min_value=1, max_value=16),
    )
    def write(self, lba, length):
        length = min(length, SPACE - lba)
        self.translator.submit(IORequest.write(lba, length))
        for offset in range(length):
            self.shadow[lba + offset] = self.frontier + offset
        self.frontier += length

    @rule(
        lba=st.integers(min_value=0, max_value=SPACE - 1),
        length=st.integers(min_value=1, max_value=32),
    )
    def read_resolves_latest(self, lba, length):
        length = min(length, SPACE - lba)
        outcome = self.translator.submit(IORequest.read(lba, length))
        cursor = lba
        for access in outcome.accesses:
            for offset in range(access.length):
                sector = cursor + offset
                expected = self.shadow.get(sector, sector)
                assert access.pba + offset == expected
            cursor += access.length
        assert cursor == lba + length

    @invariant()
    def frontier_consistent(self):
        assert self.translator.frontier == self.frontier


TranslatorMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)
TestTranslatorMachine = TranslatorMachine.TestCase
