"""Cold-start ingestion: stores are primed once, ahead of the exhibits.

``ingest_workloads`` is the standalone entry point; ``run_exhibits``
schedules the same ingest units ahead of its exhibit shards whenever a
persistent store is given.  Either way the contract is the same: each
distinct workload pays synthesis (and, for stream-path exhibits,
fragment-stream recording) exactly once, ingest failures are non-fatal,
and an exhibit never re-synthesizes a workload its ingest unit already
compiled.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import common, registry, runner
from repro.experiments.runner import (
    STATUS_FAILED,
    STATUS_OK,
    ingest_workloads,
    run_exhibits,
)
from repro.experiments.sweep import reset_sweep_engines
from repro.trace.store import TraceStore, synthetic_meta

QUIET = {"echo": lambda s: None}
SEED, SCALE = 42, 0.05
WORKLOADS = ["hm_1", "usr_0"]


@pytest.fixture(autouse=True)
def _clean_state():
    def reset():
        common.set_fast_replay(False)
        common.set_trace_store(None)
        common.set_stream_store(None)
        common.clear_trace_cache()
        reset_sweep_engines()

    reset()
    yield
    reset()


def _assert_stores_primed(trace_root, stream_root):
    store = TraceStore(trace_root)
    for name in WORKLOADS:
        assert store.load(synthetic_meta(name, SEED, SCALE)) is not None, name
    # Stream entries are hash-keyed dirs: one per primed workload.
    stream_dirs = [p for p in stream_root.iterdir() if p.is_dir()]
    assert len(stream_dirs) == len(WORKLOADS)


class TestIngestWorkloads:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_populates_both_stores(self, tmp_path, jobs):
        outcomes = ingest_workloads(
            WORKLOADS,
            seed=SEED,
            scale=SCALE,
            trace_store=str(tmp_path / "traces"),
            stream_store=str(tmp_path / "streams"),
            jobs=jobs,
            mp_start_method="fork" if jobs > 1 else None,
            **QUIET,
        )
        assert [o.status for o in outcomes] == [STATUS_OK] * len(WORKLOADS)
        assert {o.name for o in outcomes} == set(WORKLOADS)
        _assert_stores_primed(tmp_path / "traces", tmp_path / "streams")

    def test_deduplicates_names(self, tmp_path):
        outcomes = ingest_workloads(
            ["hm_1", "hm_1", "hm_1"],
            seed=SEED,
            scale=SCALE,
            trace_store=str(tmp_path / "traces"),
            **QUIET,
        )
        assert len(outcomes) == 1 and outcomes[0].ok

    def test_unknown_workload_fails_that_unit_only(self, tmp_path):
        outcomes = ingest_workloads(
            ["no_such_workload", "hm_1"],
            seed=SEED,
            scale=SCALE,
            trace_store=str(tmp_path / "traces"),
            **QUIET,
        )
        by_name = {o.name: o for o in outcomes}
        assert by_name["hm_1"].ok
        assert by_name["no_such_workload"].status == STATUS_FAILED

    def test_serial_run_restores_process_state(self, tmp_path):
        sentinel = TraceStore(tmp_path / "pre-existing")
        common.set_trace_store(sentinel)
        common.set_fast_replay(True)
        ingest_workloads(
            ["hm_1"],
            seed=SEED,
            scale=SCALE,
            trace_store=str(tmp_path / "traces"),
            jobs=1,
            **QUIET,
        )
        assert common.trace_store() is sentinel
        assert common.fast_replay_default() is True

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ingest_workloads(["hm_1"], jobs=0)


class TestRunExhibitsIngestFirst:
    def test_exhibit_starts_warm(self, tmp_path, monkeypatch):
        """With a trace store, the exhibit unit is gated on its workload's
        ingest unit: by the time it replays, the synthesis is already
        compiled — the exhibit's own trace loads never miss."""

        def alpha(seed=42, scale=1.0, out_dir=None):
            store = common.trace_store()
            entry = store.load(synthetic_meta("hm_1", seed, scale))
            common.workload_trace("hm_1", seed, scale)
            data = {
                "entry_on_disk_at_start": entry is not None,
                "misses": store.misses - (0 if entry is not None else 1),
            }
            common.save_json("alpha", data, out_dir)
            return data

        monkeypatch.setitem(registry.EXHIBITS, "alpha", alpha)
        monkeypatch.setitem(runner.WORKLOADS, "alpha", lambda s, sc: ["hm_1"])
        outcomes = run_exhibits(
            ["alpha"],
            seed=SEED,
            scale=SCALE,
            out_dir=str(tmp_path / "out"),
            jobs=2,
            trace_store=str(tmp_path / "traces"),
            mp_start_method="fork",
            **QUIET,
        )
        assert [o.status for o in outcomes] == [STATUS_OK]
        data = json.loads((tmp_path / "out" / "alpha.json").read_text())
        assert data["entry_on_disk_at_start"] is True
        assert data["misses"] == 0

    def test_ingest_failure_does_not_fail_dependents(self, tmp_path, monkeypatch):
        """A workload whose ingestion explodes leaves its dependents
        running cold, not cancelled."""

        def alpha(seed=42, scale=1.0, out_dir=None):
            common.save_json("alpha", {"ran": True}, out_dir)
            return {"ran": True}

        monkeypatch.setitem(registry.EXHIBITS, "alpha", alpha)
        monkeypatch.setitem(
            runner.WORKLOADS, "alpha", lambda s, sc: ["no_such_workload"]
        )
        messages = []
        outcomes = run_exhibits(
            ["alpha"],
            seed=SEED,
            scale=SCALE,
            out_dir=str(tmp_path / "out"),
            jobs=2,
            trace_store=str(tmp_path / "traces"),
            mp_start_method="fork",
            echo=messages.append,
        )
        assert [o.status for o in outcomes] == [STATUS_OK]
        assert (tmp_path / "out" / "alpha.json").exists()
        assert any(
            "no_such_workload" in m and "continuing without it" in m
            for m in messages
        )

    def test_stream_priming_respects_registry_gate(self, tmp_path, monkeypatch):
        """Only exhibits in STREAM_PRIMING get their workloads' fragment
        streams pre-recorded; others prime the trace store alone."""

        def alpha(seed=42, scale=1.0, out_dir=None):
            common.save_json("alpha", {}, out_dir)
            return {}

        monkeypatch.setitem(registry.EXHIBITS, "alpha", alpha)
        monkeypatch.setitem(runner.WORKLOADS, "alpha", lambda s, sc: ["hm_1"])
        stream_root = tmp_path / "streams"
        run_exhibits(
            ["alpha"],
            seed=SEED,
            scale=SCALE,
            out_dir=str(tmp_path / "out"),
            jobs=2,
            fast=True,
            trace_store=str(tmp_path / "traces"),
            stream_store=str(stream_root),
            mp_start_method="fork",
            **QUIET,
        )
        # "alpha" is not in STREAM_PRIMING: the trace compiled, but no
        # stream entry was recorded for it.
        assert TraceStore(tmp_path / "traces").load(
            synthetic_meta("hm_1", SEED, SCALE)
        ) is not None
        stream_dirs = [p for p in stream_root.iterdir() if p.is_dir()] if (
            stream_root.exists()
        ) else []
        assert stream_dirs == []
