"""Schema tests for every trace-driven exhibit at a tiny scale.

These pin the exact structure of the data each runner returns (the JSON
contract consumers of ``results/*.json`` rely on), independent of the
shape assertions in tests/integration.
"""

import pytest

from repro.experiments import fig2, fig3, fig4, fig5, fig7, fig10, fig11

TINY = dict(seed=42, scale=0.05)


class TestFig2Schema:
    def test_rows(self):
        data = fig2.run(**TINY)
        assert len(data) == 21
        for row in data.values():
            assert row["family"] in ("msr", "cloudphysics")
            for side in ("nols", "ls"):
                assert set(row[side]) == {"read_seeks", "write_seeks"}
                assert all(v >= 0 for v in row[side].values())


class TestFig3Schema:
    def test_rows(self):
        data = fig3.run(**TINY)
        for row in data.values():
            assert set(row) >= {
                "window_ops",
                "series",
                "total_extra_long_seeks",
                "max_window",
                "windows_with_overhead",
                "windows",
                "burstiness",
            }
            assert row["windows_with_overhead"] <= row["windows"]
            assert len(row["series"]) <= 200  # downsampled


class TestFig4Schema:
    def test_rows(self):
        data = fig4.run(**TINY)
        for row in data.values():
            assert 0.0 <= row["nols_fraction_within_window"] <= 1.0
            assert 0.0 <= row["ls_fraction_within_window"] <= 1.0
            for cdf_key in ("nols_cdf", "ls_cdf"):
                fractions = [f for _, f in row[cdf_key]]
                assert fractions == sorted(fractions)


class TestFig5Schema:
    def test_rows(self):
        data = fig5.run(**TINY)
        for row in data.values():
            assert row["total_fragments"] >= 2 * row["fragmented_reads"]
            assert row["max_fragments_per_read"] >= 2 or row["fragmented_reads"] == 0
            for x, f in row["cdf"]:
                assert x >= 2 and 0 < f <= 1.0


class TestFig7Schema:
    def test_rows(self):
        data = fig7.run(**TINY)
        for row in data.values():
            assert 0.0 <= row["descending_step_fraction_all"] <= 1.0
            assert len(row["lbas"]) == row["sample_ops"] or len(row["lbas"]) <= 400


class TestFig10Schema:
    def test_rows(self):
        data = fig10.run(**TINY)
        for row in data.values():
            assert row["cache_mib_for_50pct"] <= row["cache_mib_for_80pct"] + 1e-9
            assert row["cache_mib_for_80pct"] <= row["cache_mib_for_90pct"] + 1e-9
            assert row["cache_mib_for_90pct"] <= row["total_mib"] + 1e-9
            counts = row["access_counts"]
            assert counts == sorted(counts, reverse=True)
            cumulative = row["cumulative_mib"]
            assert cumulative == sorted(cumulative)


class TestFig11Schema:
    def test_rows(self):
        data = fig11.run(**TINY)
        assert len(data) == 21
        for row in data.values():
            for config in ("LS", "LS+defrag", "LS+prefetch", "LS+cache"):
                saf = row["saf"][config]
                assert set(saf) == {"read", "write", "total"}
                assert saf["total"] >= 0
