"""Exhibit-runner tests.

The scenario exhibits (fig6, fig9) run at full fidelity; the trace-driven
exhibits run at a reduced scale so this file stays fast.  The full-scale
shape assertions live in tests/integration/test_paper_shapes.py.
"""

import json

import pytest

from repro.experiments import fig6, fig8, fig9, table1
from repro.experiments.common import downsample, save_json
from repro.experiments.registry import EXHIBITS, run_exhibit

SMALL = dict(seed=42, scale=0.1)


class TestRegistry:
    def test_all_exhibits_registered(self):
        paper = {
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        }
        ablations = {
            "ablation_cache",
            "ablation_defrag",
            "ablation_prefetch",
            "ablation_cleaning",
            "ablation_multifrontier",
            "ablation_combined",
            "taxonomy",
        }
        assert set(EXHIBITS) == paper | ablations

    def test_unknown_exhibit(self):
        with pytest.raises(KeyError, match="unknown exhibit"):
            run_exhibit("fig99")


class TestScenarioExhibits:
    def test_fig6_matches_paper_walkthrough(self):
        data = fig6.run()
        assert data["without_defrag"]["rd_2_5_first"]["read_seeks"] == 4
        assert data["with_defrag"]["rd_2_5_again"]["read_seeks"] <= 1
        assert data["with_defrag"]["rd_1_2"]["read_seeks"] == 2

    def test_fig9_matches_paper_walkthrough(self):
        data = fig9.run()
        assert data["without_prefetch"]["read_seeks"] == 5
        assert data["with_prefetch"]["read_seeks"] == 3


class TestTraceDrivenExhibits:
    def test_table1_rows_for_all_workloads(self):
        data = table1.run(**SMALL)
        assert len(data) == 21
        assert data["w91"]["paper"]["read_count"] == 3147384
        assert data["w91"]["synthetic"]["read_count"] > 0

    def test_fig8_rates_in_range(self):
        data = fig8.run(**SMALL)
        assert len(data) == 21
        assert all(0.0 <= rate <= 1.0 for rate in data.values())

    def test_json_dump(self, tmp_path):
        data = fig6.run(out_dir=str(tmp_path))
        path = tmp_path / "fig6.json"
        assert path.exists()
        assert json.loads(path.read_text()) == data


class TestCommonHelpers:
    def test_downsample_short_series(self):
        assert downsample([1, 2, 3], max_points=10) == [1, 2, 3]

    def test_downsample_long_series(self):
        series = list(range(1000))
        out = downsample(series, max_points=100)
        assert len(out) == 100
        assert out[0] == 0 and out[-1] == 999

    def test_save_json_disabled(self):
        assert save_json("x", {}, None) is None
