"""Consolidated-report generator tests."""

import json

import pytest

from repro.experiments.report import build_report, write_report


def seed_results(tmp_path):
    (tmp_path / "fig11.json").write_text(
        json.dumps(
            {
                "w91": {
                    "family": "cloudphysics",
                    "saf": {
                        "LS": {"total": 2.9},
                        "LS+defrag": {"total": 1.6},
                        "LS+prefetch": {"total": 1.3},
                        "LS+cache": {"total": 0.7},
                    },
                }
            }
        )
    )
    (tmp_path / "fig8.json").write_text(json.dumps({"src2_2": 0.05, "w76": 0.0}))
    (tmp_path / "fig6.json").write_text(
        json.dumps(
            {
                "without_defrag": {"rd_2_5_first": {"read_seeks": 4}},
                "with_defrag": {
                    "rd_2_5_again": {"read_seeks": 1},
                    "rd_1_2": {"read_seeks": 2},
                },
            }
        )
    )
    (tmp_path / "taxonomy.json").write_text(
        json.dumps(
            {
                "w91": {"measured": "log-sensitive", "predicted": "log-sensitive"},
                "usr_0": {"measured": "log-friendly", "predicted": "log-sensitive"},
            }
        )
    )


class TestBuildReport:
    def test_sections_from_available_jsons(self, tmp_path):
        seed_results(tmp_path)
        report = build_report(tmp_path)
        assert "## Fig. 11" in report
        assert "| w91 | cloudphysics | 2.90 | 1.60 | 1.30 | 0.70 | LS+cache |" in report
        assert "## Fig. 8" in report
        assert "## Fig. 6" in report
        assert "1/2 workloads" in report  # taxonomy agreement

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "nope")

    def test_empty_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no exhibit JSONs"):
            build_report(tmp_path)

    def test_write_report_default_path(self, tmp_path):
        seed_results(tmp_path)
        path = write_report(tmp_path)
        assert path == tmp_path / "REPORT.md"
        assert path.read_text().startswith("# Reproduction report")


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        seed_results(tmp_path)
        assert main(["report", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "REPORT.md").exists()

    def test_report_requires_out(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["report"])

    def test_unknown_exhibit_errors(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_single_exhibit_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig6"]) == 0
        assert "Fig. 6 scenario" in capsys.readouterr().out
