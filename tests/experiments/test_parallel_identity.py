"""Exhibit JSON is byte-identical across every execution configuration.

The PR-5 contract: the grid-sharded parallel runner, the vectorized fast
path, and the persistent trace/stream stores are *unobservable* in the
results.  These tests run real (workload-reduced) exhibits through the
full matrix — {reference, fast} x {jobs=1, jobs=4} x {cold, warm stream
store} — and assert every cell writes the same bytes, and that a warm
store means each workload's fragment stream is never re-recorded.

The pool uses the ``fork`` start method so the workload-set monkeypatches
survive into the workers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import common, fig4, fig5, fig11
from repro.experiments.runner import run_exhibits
from repro.experiments.sweep import reset_sweep_engines

QUIET = {"echo": lambda s: None}
SEED, SCALE = 42, 0.05


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    """Small workload sets, and no shared replay state leaking either way."""
    monkeypatch.setattr(fig4, "FIG4_WORKLOADS", ("usr_0", "src2_2"))
    monkeypatch.setattr(fig5, "FIG5_WORKLOADS", ("usr_0", "hm_1"))
    monkeypatch.setattr(fig11, "MSR_WORKLOADS", ("hm_1",))
    monkeypatch.setattr(fig11, "CLOUDPHYSICS_WORKLOADS", ("w91",))
    common.set_fast_replay(False)
    common.set_trace_store(None)
    common.set_stream_store(None)
    common.clear_trace_cache()
    reset_sweep_engines()
    yield
    common.set_fast_replay(False)
    common.set_trace_store(None)
    common.set_stream_store(None)
    common.clear_trace_cache()
    reset_sweep_engines()


def _dumps(out_dir) -> dict:
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(out_dir).glob("*.json"))
        if path.name != "run.json"
    }


def _run(names, out_dir, jobs, fast, stream_store=None):
    outcomes = run_exhibits(
        names,
        seed=SEED,
        scale=SCALE,
        out_dir=str(out_dir),
        jobs=jobs,
        fast=fast,
        stream_store=stream_store,
        mp_start_method="fork" if jobs > 1 else None,
        **QUIET,
    )
    bad = [(o.name, o.status, o.error) for o in outcomes if not o.ok]
    assert not bad, bad
    return _dumps(out_dir)


def test_full_matrix_is_byte_identical(tmp_path):
    names = ["fig4", "fig11"]
    store = str(tmp_path / "stream-store")
    reference = _run(names, tmp_path / "ref1", jobs=1, fast=False)
    cells = {
        "ref_jobs4": _run(names, tmp_path / "ref4", jobs=4, fast=False),
        "fast_jobs1_cold": _run(names, tmp_path / "f1c", jobs=1, fast=True),
        "fast_jobs4_cold": _run(
            names, tmp_path / "f4c", jobs=4, fast=True, stream_store=store
        ),
        "fast_jobs4_warm": _run(
            names, tmp_path / "f4w", jobs=4, fast=True, stream_store=store
        ),
        "fast_jobs1_warm": _run(
            names, tmp_path / "f1w", jobs=1, fast=True, stream_store=store
        ),
    }
    assert set(reference) == {"fig4.json", "fig11.json"}
    for cell, dumps in cells.items():
        assert dumps == reference, f"{cell} diverged from the serial reference"


def test_map_tier_is_byte_identical_across_jobs(tmp_path, monkeypatch):
    """Forcing either extent-map tier via ``REPRO_EXTENT_MAP`` must leave
    exhibit JSON untouched, serially and under the fork pool (workers
    inherit the env, so every worker replays on the forced tier)."""
    from repro.extentmap.tiers import ENV_TIER, MAP_TIERS

    names = ["fig4", "fig11"]
    reference = _run(names, tmp_path / "ref", jobs=1, fast=True)
    assert set(reference) == {"fig4.json", "fig11.json"}
    for tier in MAP_TIERS:
        monkeypatch.setenv(ENV_TIER, tier)
        for jobs in (1, 4):
            common.clear_trace_cache()
            reset_sweep_engines()
            dumps = _run(names, tmp_path / f"{tier}{jobs}", jobs=jobs, fast=True)
            assert dumps == reference, f"tier={tier} jobs={jobs} diverged"


def test_warm_store_records_each_stream_at_most_once(tmp_path, monkeypatch):
    """With a primed store, no process ever re-records a fragment stream —
    including pool workers (fork propagates the poisoned recorder) and
    workloads shared across exhibits (fig4 and fig5 both replay usr_0)."""
    from repro.core.stream_store import StreamStore

    names = ["fig4", "fig5"]
    root = tmp_path / "stream-store"
    _run(names, tmp_path / "cold", jobs=4, fast=True, stream_store=str(root))

    # One published stream entry per distinct workload (dirs; baselines
    # are *.nols.json files).
    workloads = set(fig4.FIG4_WORKLOADS) | set(fig5.FIG5_WORKLOADS)
    stream_entries = [p for p in root.iterdir() if p.is_dir()]
    assert len(stream_entries) == len(workloads)

    def boom(*args, **kwargs):
        raise AssertionError("stream re-recorded despite a warm store")

    monkeypatch.setattr("repro.experiments.sweep.record_fragment_stream", boom)
    warm = _run(names, tmp_path / "warm4", jobs=4, fast=True, stream_store=str(root))
    assert warm == _dumps(tmp_path / "cold")

    # Serially (in-process) the store counters are observable: everything
    # is a hit, nothing is a miss.
    store = StreamStore(root)
    common.clear_trace_cache()
    reset_sweep_engines()
    run_exhibits(
        names,
        seed=SEED,
        scale=SCALE,
        out_dir=str(tmp_path / "warm1"),
        jobs=1,
        fast=True,
        stream_store=store,
        **QUIET,
    )
    assert store.misses == 0
    assert store.hits >= len(workloads)
