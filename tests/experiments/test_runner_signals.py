"""Interrupt handling: SIGTERM/SIGINT finalize the manifest, resume works."""

import json
import os
import signal

import pytest

from repro.experiments import registry, runner
from repro.experiments.runner import (
    MANIFEST_NAME,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    RunInterrupted,
    run_exhibits,
    run_signal_handlers,
)


@pytest.fixture
def sigterm_exhibits(monkeypatch):
    """alpha completes; beta receives SIGTERM mid-exhibit; gamma never runs."""
    calls = []

    def make(name, sig=None):
        def run(seed=42, scale=1.0, out_dir=None):
            calls.append(name)
            if sig is not None:
                os.kill(os.getpid(), sig)
            if out_dir is not None:
                from repro.experiments.common import save_json

                save_json(name, {"name": name, "seed": seed}, out_dir)
            return {"name": name}

        return run

    fakes = {
        "alpha": make("alpha"),
        "beta": make("beta", sig=signal.SIGTERM),
        "gamma": make("gamma"),
    }
    monkeypatch.setattr(registry, "EXHIBITS", fakes)
    return calls


def test_run_signal_handlers_translates_sigterm():
    before_term = signal.getsignal(signal.SIGTERM)
    before_int = signal.getsignal(signal.SIGINT)
    with pytest.raises(RunInterrupted) as excinfo:
        with run_signal_handlers():
            os.kill(os.getpid(), signal.SIGTERM)
    assert excinfo.value.signum == signal.SIGTERM
    assert excinfo.value.signal_name == "SIGTERM"
    # Previous handlers are restored even on the raising path.
    assert signal.getsignal(signal.SIGTERM) is before_term
    assert signal.getsignal(signal.SIGINT) is before_int


def test_sigterm_mid_exhibit_finalizes_manifest_for_resume(
    sigterm_exhibits, monkeypatch, tmp_path
):
    with pytest.raises(RunInterrupted):
        run_exhibits(
            ["alpha", "beta", "gamma"], out_dir=str(tmp_path), echo=lambda s: None
        )
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert manifest["exhibits"]["alpha"]["status"] == STATUS_OK
    assert manifest["exhibits"]["beta"]["status"] == STATUS_FAILED
    assert "interrupted (SIGTERM)" in manifest["exhibits"]["beta"]["error"]
    assert "gamma" not in manifest["exhibits"]  # never attempted
    assert sigterm_exhibits == ["alpha", "beta"]

    # Resume after the interrupt: alpha is skipped, beta and gamma run.
    fakes = dict(registry.EXHIBITS)
    original_beta = fakes["beta"]
    calls = []

    def tame_beta(seed=42, scale=1.0, out_dir=None):
        calls.append("beta")
        from repro.experiments.common import save_json

        if out_dir is not None:
            save_json("beta", {"name": "beta", "seed": seed}, out_dir)
        return {"name": "beta"}

    fakes["beta"] = tame_beta
    monkeypatch.setattr(registry, "EXHIBITS", fakes)
    outcomes = run_exhibits(
        ["alpha", "beta", "gamma"],
        out_dir=str(tmp_path),
        resume=True,
        echo=lambda s: None,
    )
    assert [o.status for o in outcomes] == [STATUS_SKIPPED, STATUS_OK, STATUS_OK]
    assert calls == ["beta"]
    assert original_beta is not tame_beta


def test_parallel_interrupt_cancels_reaps_and_finalizes(
    sigterm_exhibits, monkeypatch, tmp_path
):
    """An interrupt while waiting on the pool cancels pending futures,
    terminates workers and leaves no dangling 'running' manifest entry."""
    reaped = []
    original_reap = runner._reap_pool

    def spy_reap(pool):
        reaped.append(pool)
        original_reap(pool)

    def interrupting_wait(fs, return_when=None):
        raise RunInterrupted(signal.SIGTERM)

    monkeypatch.setattr(runner, "_reap_pool", spy_reap)
    monkeypatch.setattr(runner, "wait", interrupting_wait)

    with pytest.raises(RunInterrupted):
        run_exhibits(
            ["alpha", "gamma"],
            out_dir=str(tmp_path),
            jobs=2,
            mp_start_method="fork",
            echo=lambda s: None,
        )
    assert len(reaped) == 1
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    # The placeholder 'running' entries were dropped: the manifest tells
    # the truth (nothing completed) and a resume re-runs both.
    assert all(
        entry["status"] != "running" for entry in manifest["exhibits"].values()
    )


def test_cli_exit_code_is_128_plus_signum(monkeypatch, capsys):
    from repro.experiments import __main__ as cli

    def interrupted_run(*args, **kwargs):
        raise RunInterrupted(signal.SIGTERM)

    monkeypatch.setattr(cli, "run_exhibits", interrupted_run)
    code = cli.main(["table1"])
    assert code == 128 + signal.SIGTERM
    assert "--resume" in capsys.readouterr().err
