"""``replay_with`` must fall back to the reference simulator — silently
and exactly — whenever the replay needs something the kernels cannot do:
recorders observing per-request events, or a retry policy injecting
fault handling.  Parametrized over every paper config so a future kernel
for a new technique can't regress the fallback.
"""

from __future__ import annotations

import pytest

from repro.core.config import PAPER_CONFIGS, build_translator
from repro.core.recorders import SeekLogRecorder
from repro.core.simulator import RetryPolicy, Simulator
from repro.experiments import common
from repro.experiments.common import replay_with
from repro.workloads import synthesize_workload

CONFIG_IDS = [config.name for config in PAPER_CONFIGS]


@pytest.fixture(scope="module")
def trace():
    return synthesize_workload("usr_0", seed=42, scale=0.02)


def _reference(trace, config, recorders=(), retry_policy=None):
    translator = build_translator(trace, config)
    return Simulator(
        recorders=list(recorders), retry_policy=retry_policy
    ).run(trace, translator)


@pytest.mark.parametrize("config", PAPER_CONFIGS, ids=CONFIG_IDS)
def test_recorder_forces_reference_simulator(trace, config):
    recorder = SeekLogRecorder()
    fast = replay_with(trace, config, [recorder], fast=True)

    check = SeekLogRecorder()
    reference = _reference(trace, config, [check])

    assert fast.trace_name == reference.trace_name
    assert fast.translator == reference.translator
    assert fast.stats == reference.stats
    # The recorder must have seen the full reference event stream.
    assert recorder.distances == check.distances
    assert [r.is_read for r in recorder.records] == [
        r.is_read for r in check.records
    ]


@pytest.mark.parametrize("config", PAPER_CONFIGS, ids=CONFIG_IDS)
def test_retry_policy_forces_reference_simulator(trace, config):
    policy = RetryPolicy(max_retries=2)
    fast = replay_with(trace, config, fast=True, retry_policy=policy)
    reference = _reference(trace, config, retry_policy=RetryPolicy(max_retries=2))
    assert fast.stats == reference.stats
    assert fast.translator == reference.translator
    # No faults are injected here, so the retry counters must stay zero —
    # proof the policy rode along without perturbing the replay.
    assert fast.stats.retried_ops == 0


@pytest.mark.parametrize("config", PAPER_CONFIGS, ids=CONFIG_IDS)
def test_process_default_fast_still_falls_back(trace, config):
    common.set_fast_replay(True)
    try:
        recorder = SeekLogRecorder()
        with_recorder = replay_with(trace, config, [recorder])
        assert recorder.records or not with_recorder.stats.total_seeks
        assert with_recorder.stats == _reference(trace, config).stats
    finally:
        common.set_fast_replay(False)
