"""Sweep-engine behavior: shared state, dispatch, store integration, and
byte-identical exhibit JSON between the fast and reference paths.
"""

from __future__ import annotations

import contextlib
import io
import json
from pathlib import Path

import pytest

from repro.core.config import LS, PAPER_CONFIGS, TechniqueConfig
from repro.core.recorders import SeekLogRecorder
from repro.core.selective_cache import SelectiveCacheConfig
from repro.experiments import ablations, common, fig9, fig10, fig11
from repro.experiments.sweep import SweepEngine, reset_sweep_engines, sweep_engine
from repro.trace.store import TraceStore
from repro.workloads import synthesize_workload

SEED, SCALE = 42, 0.05


@pytest.fixture(autouse=True)
def _clean_state():
    """Each test starts and ends with no shared replay state."""
    common.set_fast_replay(False)
    common.set_trace_store(None)
    common.set_stream_store(None)
    common.clear_trace_cache()
    reset_sweep_engines()
    yield
    common.set_fast_replay(False)
    common.set_trace_store(None)
    common.set_stream_store(None)
    common.clear_trace_cache()
    reset_sweep_engines()


def _quiet(fn, **kwargs):
    with contextlib.redirect_stdout(io.StringIO()):
        return fn(**kwargs)


class TestEngineSharing:
    def test_registry_memoizes_per_seed_scale(self):
        assert sweep_engine(1, 0.5) is sweep_engine(1, 0.5)
        assert sweep_engine(1, 0.5) is not sweep_engine(2, 0.5)
        reset_sweep_engines()
        first = sweep_engine(1, 0.5)
        assert sweep_engine(1, 0.5) is first

    def test_one_recording_serves_many_configs(self):
        engine = SweepEngine(seed=SEED, scale=SCALE, fast=True)
        trace = engine.trace("hm_1")
        engine.sweep(trace, list(PAPER_CONFIGS))
        assert engine.streams_recorded == 1
        engine.sweep(trace, list(PAPER_CONFIGS))
        assert engine.streams_recorded == 1

    def test_baseline_cached_per_workload(self):
        engine = SweepEngine(seed=SEED, scale=SCALE, fast=True)
        first = engine.baseline("hm_1")
        assert engine.baseline("hm_1") is first

    def test_recorder_routes_to_reference(self):
        engine = SweepEngine(seed=SEED, scale=SCALE, fast=True)
        trace = engine.trace("hm_1")
        recorder = SeekLogRecorder()
        result = engine.replay(trace, LS, [recorder])
        assert len(recorder.distances) == result.stats.total_seeks

    def test_fast_and_reference_agree(self):
        reference = SweepEngine(seed=SEED, scale=SCALE, fast=False)
        fast = SweepEngine(seed=SEED, scale=SCALE, fast=True)
        configs = list(PAPER_CONFIGS) + [
            TechniqueConfig(
                name=f"cache{mib:g}",
                cache=SelectiveCacheConfig(capacity_mib=mib),
            )
            for mib in (2.0, 8.0, 32.0)
        ]
        trace = synthesize_workload("usr_0", seed=SEED, scale=SCALE)
        slow = reference.sweep(trace, configs)
        quick = fast.sweep(trace, configs)
        for config, a, b in zip(configs, slow, quick):
            assert a.stats == b.stats, config.name
            assert a.translator == b.translator, config.name


class TestTraceStoreIntegration:
    def test_fig11_hits_store_once_per_workload(self, tmp_path, monkeypatch):
        """With a primed store, a fig11 run loads each workload exactly once."""
        monkeypatch.setattr(fig11, "MSR_WORKLOADS", ("hm_1",))
        monkeypatch.setattr(fig11, "CLOUDPHYSICS_WORKLOADS", ("w91",))
        store = TraceStore(tmp_path / "store")
        common.set_trace_store(store)

        _quiet(fig11.run, seed=SEED, scale=SCALE)  # misses prime the store
        assert store.hits == 0 and store.misses == 2

        common.clear_trace_cache()
        reset_sweep_engines()
        store.hits = store.misses = 0
        _quiet(fig11.run, seed=SEED, scale=SCALE)
        assert store.hits == 2, "expected exactly one store hit per workload"
        assert store.misses == 0

    def test_store_counts_corrupt_entry_as_miss(self, tmp_path):
        from repro.trace.store import synthetic_meta

        store = TraceStore(tmp_path / "store")
        trace = synthesize_workload("hm_1", seed=SEED, scale=0.01)
        meta = synthetic_meta("hm_1", SEED, 0.01)
        path = store.store(trace, meta)
        (path / "header.json").write_text("torn write")
        assert store.load(meta) is None
        assert (store.hits, store.misses) == (0, 1)


class TestStreamStoreIntegration:
    def test_lru_keyed_by_content_not_object_identity(self):
        """Two loads of the same workload share one recorded stream."""
        engine = SweepEngine(seed=SEED, scale=SCALE, fast=True)
        first = synthesize_workload("hm_1", seed=SEED, scale=SCALE)
        second = synthesize_workload("hm_1", seed=SEED, scale=SCALE)
        assert first is not second
        engine.stream_for(first)
        engine.stream_for(second)
        assert engine.streams_recorded == 1
        assert len(engine._streams) == 1

    def test_store_serves_streams_across_engines(self, tmp_path):
        from repro.core.stream_store import StreamStore

        store = StreamStore(tmp_path / "streams")
        trace = synthesize_workload("hm_1", seed=SEED, scale=SCALE)

        cold = SweepEngine(seed=SEED, scale=SCALE, fast=True, stream_store=store)
        recorded = cold.stream_for(trace)
        assert cold.streams_recorded == 1
        assert (store.hits, store.misses) == (0, 1)

        warm = SweepEngine(seed=SEED, scale=SCALE, fast=True, stream_store=store)
        loaded = warm.stream_for(trace)
        assert warm.streams_recorded == 0, "the store must serve this"
        assert (store.hits, store.misses) == (1, 1)
        assert loaded.pba.tolist() == recorded.pba.tolist()
        assert loaded.group_start.tolist() == recorded.group_start.tolist()

    def test_store_serves_baselines_across_engines(self, tmp_path):
        from repro.core.stream_store import StreamStore

        store = StreamStore(tmp_path / "streams")
        cold = SweepEngine(seed=SEED, scale=SCALE, fast=True, stream_store=store)
        stats = cold.baseline("hm_1")
        assert (store.baseline_hits, store.baseline_misses) == (0, 1)

        warm = SweepEngine(seed=SEED, scale=SCALE, fast=True, stream_store=store)
        assert warm.baseline("hm_1") == stats
        assert (store.baseline_hits, store.baseline_misses) == (1, 1)

    def test_reference_engine_never_consults_the_store(self, tmp_path):
        from repro.core.stream_store import StreamStore

        store = StreamStore(tmp_path / "streams")
        primer = SweepEngine(seed=SEED, scale=SCALE, fast=True, stream_store=store)
        primer.baseline("hm_1")

        reference = SweepEngine(
            seed=SEED, scale=SCALE, fast=False, stream_store=store
        )
        reference.baseline("hm_1")
        assert store.baseline_hits == 0, "reference path must stay store-free"


class TestByteIdenticalExhibits:
    def _run_both(self, tmp_path, runs, monkeypatch=None):
        for mode, out in (("ref", False), ("fast", True)):
            common.set_fast_replay(out)
            common.clear_trace_cache()
            reset_sweep_engines()
            for fn in runs:
                _quiet(fn, seed=SEED, scale=SCALE, out_dir=str(tmp_path / mode))
        ref_dir, fast_dir = tmp_path / "ref", tmp_path / "fast"
        dumps = sorted(ref_dir.glob("*.json"))
        assert dumps, "exhibits produced no JSON"
        for path in dumps:
            assert path.read_bytes() == (fast_dir / path.name).read_bytes(), (
                f"{path.name} differs between reference and fast paths"
            )

    def test_fig9_and_fig10(self, tmp_path, monkeypatch):
        monkeypatch.setattr(fig10, "FIG10_WORKLOADS", ("hm_1", "w91"))
        self._run_both(tmp_path, [fig9.run, fig10.run])

    def test_fig11(self, tmp_path, monkeypatch):
        monkeypatch.setattr(fig11, "MSR_WORKLOADS", ("usr_0", "hm_1"))
        monkeypatch.setattr(fig11, "CLOUDPHYSICS_WORKLOADS", ("w91",))
        self._run_both(tmp_path, [fig11.run])

    def test_ablation_sweeps(self, tmp_path):
        self._run_both(
            tmp_path,
            [ablations.run_cache, ablations.run_defrag, ablations.run_prefetch],
        )

    def test_dump_content_is_valid_json(self, tmp_path):
        common.set_fast_replay(True)
        data = _quiet(fig9.run, seed=SEED, scale=SCALE, out_dir=str(tmp_path))
        assert json.loads(Path(tmp_path, "fig9.json").read_text()) == data
