"""Text-rendering helper tests."""

from repro.experiments.render import (
    format_table,
    grouped_bars,
    hbar_chart,
    sparkline,
    step_cdf,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"


class TestHbarChart:
    def test_scaling(self):
        out = hbar_chart([("a", 10.0), ("b", 5.0)], width=10)
        a_line, b_line = out.splitlines()
        assert a_line.count("#") == 10
        assert b_line.count("#") == 5

    def test_empty(self):
        assert hbar_chart([], title="t") == "t"

    def test_zero_values(self):
        out = hbar_chart([("a", 0.0)])
        assert "0.00" in out


class TestGroupedBars:
    def test_groups_rendered(self):
        out = grouped_bars([("g1", [("x", 1.0)]), ("g2", [("y", 2.0)])])
        assert "g1:" in out and "g2:" in out


class TestStepCdf:
    def test_plot_dimensions(self):
        out = step_cdf([(0.0, 0.5), (1.0, 1.0)], width=20, height=5)
        lines = out.splitlines()
        assert len(lines) == 5 + 2  # rows + axis + labels

    def test_empty(self):
        assert "(empty)" in step_cdf([])


class TestSparkline:
    def test_length_capped(self):
        assert len(sparkline(list(range(500)), width=50)) == 50

    def test_constant_series(self):
        out = sparkline([3.0, 3.0, 3.0])
        assert len(out) == 3

    def test_empty(self):
        assert sparkline([]) == "(empty)"
