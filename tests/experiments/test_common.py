"""experiments.common plumbing tests."""

from repro.core.config import NOLS
from repro.experiments.common import replay_with, workload_trace


class TestWorkloadTraceMemo:
    def test_same_key_same_object(self):
        a = workload_trace("ts_0", 42, 0.05)
        b = workload_trace("ts_0", 42, 0.05)
        assert a is b

    def test_distinct_keys_distinct_traces(self):
        a = workload_trace("ts_0", 42, 0.05)
        b = workload_trace("ts_0", 7, 0.05)
        c = workload_trace("ts_0", 42, 0.1)
        assert a is not b and a is not c
        assert len(c) > len(a)


class TestReplayWith:
    def test_fresh_translator_per_call(self):
        trace = workload_trace("ts_0", 42, 0.05)
        first = replay_with(trace, NOLS).stats
        second = replay_with(trace, NOLS).stats
        assert first.total_seeks == second.total_seeks

    def test_recorders_attached(self):
        from repro.core.recorders import OutcomeLogRecorder

        trace = workload_trace("ts_0", 42, 0.05)
        recorder = OutcomeLogRecorder()
        replay_with(trace, NOLS, [recorder])
        assert len(recorder.outcomes) == len(trace)
