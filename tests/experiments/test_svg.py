"""SVG chart emitter tests."""

import xml.dom.minidom

import pytest

from repro.experiments.charts import RENDERERS, render_svg
from repro.experiments.svg import (
    SvgCanvas,
    _nice_ticks,
    bar_chart,
    grouped_bar_chart,
    line_chart,
)


def assert_valid_svg(svg: str) -> None:
    doc = xml.dom.minidom.parseString(svg)
    assert doc.documentElement.tagName == "svg"


class TestSvgCanvas:
    def test_empty_canvas_is_valid(self):
        assert_valid_svg(SvgCanvas().to_string())

    def test_elements_serialized(self):
        canvas = SvgCanvas(100, 100)
        canvas.rect(0, 0, 10, 10, "#fff")
        canvas.line(0, 0, 10, 10)
        canvas.polyline([(0, 0), (5, 5)], "#000")
        canvas.text(5, 5, "hi & bye")
        svg = canvas.to_string()
        assert_valid_svg(svg)
        assert "hi &amp; bye" in svg
        assert "<rect" in svg and "<polyline" in svg

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)


class TestNiceTicks:
    def test_covers_peak(self):
        for peak in (0.7, 3.0, 47.0, 912.0):
            ticks = _nice_ticks(peak)
            assert ticks[0] == 0.0
            assert ticks[-1] >= peak

    def test_zero_peak(self):
        assert _nice_ticks(0.0) == [0.0, 1.0]

    def test_tick_count_bounded(self):
        assert len(_nice_ticks(123.0)) <= 9


class TestCharts:
    def test_grouped_bar_chart(self):
        svg = grouped_bar_chart(
            [("a", [1.0, 2.0]), ("b", [0.5, 3.0])],
            series_labels=["x", "y"],
            title="T",
            reference_line=1.0,
        )
        assert_valid_svg(svg)
        assert "T" in svg

    def test_grouped_bar_chart_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([], ["x"], "T")
        with pytest.raises(ValueError, match="expected 2"):
            grouped_bar_chart([("a", [1.0])], ["x", "y"], "T")

    def test_line_chart(self):
        svg = line_chart(
            [("s1", [(0.0, 0.0), (1.0, 1.0)]), ("s2", [(0.0, 1.0), (1.0, 0.5)])],
            title="Lines",
            x_label="x",
            y_label="y",
        )
        assert_valid_svg(svg)

    def test_line_chart_flat_series(self):
        assert_valid_svg(line_chart([("s", [(0.0, 2.0), (1.0, 2.0)])], title="flat"))

    def test_line_chart_validation(self):
        with pytest.raises(ValueError):
            line_chart([], title="T")
        with pytest.raises(ValueError):
            line_chart([("s", [])], title="T")

    def test_bar_chart(self):
        assert_valid_svg(bar_chart([("a", 0.5), ("b", 0.1)], title="Bars"))


class TestRenderSvg:
    def test_unsupported_exhibit_skipped(self, tmp_path):
        assert render_svg("fig6", {}, tmp_path) == []

    def test_fig8_rendering(self, tmp_path):
        paths = render_svg("fig8", {"w1": 0.05, "w2": 0.001}, tmp_path)
        assert [p.name for p in paths] == ["fig8.svg"]
        assert_valid_svg(paths[0].read_text())

    def test_fig11_rendering(self, tmp_path):
        data = {
            "a": {"family": "msr", "saf": {
                c: {"total": 1.0} for c in
                ("LS", "LS+defrag", "LS+prefetch", "LS+cache")
            }},
            "b": {"family": "cloudphysics", "saf": {
                c: {"total": 2.0} for c in
                ("LS", "LS+defrag", "LS+prefetch", "LS+cache")
            }},
        }
        paths = render_svg("fig11", data, tmp_path)
        assert sorted(p.name for p in paths) == [
            "fig11_cloudphysics.svg",
            "fig11_msr.svg",
        ]
        for path in paths:
            assert_valid_svg(path.read_text())

    def test_every_registered_renderer_is_an_exhibit(self):
        from repro.experiments.registry import EXHIBITS

        assert set(RENDERERS) <= set(EXHIBITS)
