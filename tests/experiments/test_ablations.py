"""Ablation-exhibit tests (reduced scale)."""

import pytest

from repro.experiments import ablations
from repro.experiments.registry import EXHIBITS

SMALL = dict(seed=42, scale=0.15)


class TestRegistration:
    def test_ablations_registered(self):
        for name in (
            "ablation_cache",
            "ablation_defrag",
            "ablation_prefetch",
            "ablation_cleaning",
            "ablation_multifrontier",
            "taxonomy",
        ):
            assert name in EXHIBITS


class TestCacheAblation:
    def test_saf_non_increasing_in_capacity(self):
        data = ablations.run_cache(**SMALL)
        for name, row in data.items():
            assert row["4MB"] >= row["64MB"] - 1e-9, name
            assert row["64MB"] >= row["256MB"] - 1e-9, name

    def test_cache_never_exceeds_plain_ls_much(self):
        data = ablations.run_cache(**SMALL)
        for name, row in data.items():
            assert row["256MB"] <= row["LS"] * 1.05, name


class TestDefragAblation:
    def test_grid_complete(self):
        data = ablations.run_defrag(**SMALL)
        assert set(data) == {"w91", "w20"}
        for row in data.values():
            assert len(row["grid"]) == 9

    def test_stricter_throttles_approach_plain_ls(self):
        data = ablations.run_defrag(**SMALL)
        for name, row in data.items():
            # N=8,k=4 defragments far less than N=2,k=1: its SAF must sit
            # closer to plain LS.
            loose_gap = abs(row["grid"]["N2k1"] - row["LS"])
            strict_gap = abs(row["grid"]["N8k4"] - row["LS"])
            assert strict_gap <= loose_gap + 0.15, name


class TestPrefetchAblation:
    def test_windows_reported(self):
        data = ablations.run_prefetch(**SMALL)
        assert set(data) == {"w91", "hm_1"}
        for row in data.values():
            assert all(f"{w:g}KB" in row for w in (64.0, 128.0, 256.0, 512.0))

    def test_w91_benefits_more_than_hm1(self):
        data = ablations.run_prefetch(**SMALL)
        gain_w91 = data["w91"]["LS"] / data["w91"]["256KB"]
        gain_hm1 = data["hm_1"]["LS"] / data["hm_1"]["256KB"]
        assert gain_w91 > gain_hm1


class TestCleaningAblation:
    def test_waf_decreases_with_overprovisioning(self):
        data = ablations.run_cleaning(**SMALL)
        wafs = [data[z]["waf"] for z in ("12", "16", "24", "40")]
        assert wafs[0] >= wafs[-1]
        assert all(w >= 1.0 for w in wafs)

    def test_cleaning_seeks_decrease(self):
        data = ablations.run_cleaning(**SMALL)
        assert data["12"]["cleaning_seeks"] >= data["40"]["cleaning_seeks"]


class TestMultifrontierAblation:
    def test_dual_frontier_pays_switch_seeks(self):
        data = ablations.run_multifrontier(**SMALL)
        assert data["dual"]["write_seeks"] > data["single"]["write_seeks"]
        assert data["dual"]["frontier_switches"] > 0

    def test_hot_and_cold_both_used(self):
        data = ablations.run_multifrontier(**SMALL)
        assert data["dual"]["hot_writes"] > 0
        assert data["dual"]["cold_writes"] > 0


class TestTaxonomy:
    def test_all_workloads_classified(self):
        data = ablations.run_taxonomy(**SMALL)
        assert len(data) == 21
        for row in data.values():
            assert row["measured"] in (
                "log-friendly",
                "log-agnostic",
                "log-sensitive",
            )
            assert row["predicted"] in ("log-friendly", "log-sensitive")

    def test_prediction_mostly_agrees(self):
        data = ablations.run_taxonomy(**SMALL)
        clear = [
            row for row in data.values() if row["measured"] != "log-agnostic"
        ]
        agree = sum(1 for row in clear if row["measured"] == row["predicted"])
        assert agree >= int(0.75 * len(clear))


class TestCombinedAblation:
    def test_combined_never_worse_than_plain_ls(self):
        data = ablations.run_combined(**SMALL)
        for name, row in data.items():
            assert row["combined"] <= row["ls"] * 1.05, name

    def test_combined_mostly_matches_best_single(self):
        data = ablations.run_combined(**SMALL)
        wins = sum(
            1
            for row in data.values()
            if row["combined"] <= row["best_single"] + 0.05
        )
        assert wins >= int(0.7 * len(data))

    def test_best_single_names_valid(self):
        data = ablations.run_combined(**SMALL)
        for row in data.values():
            assert row["best_single_name"] in (
                "LS+defrag",
                "LS+prefetch",
                "LS+cache",
            )
