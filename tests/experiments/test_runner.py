"""Crash-safe runner: manifest lifecycle, isolation, timeout, resume."""

import json

import pytest

from repro.experiments import registry
from repro.experiments.runner import (
    MANIFEST_NAME,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    ExhibitOutcome,
    RunManifest,
    exhibit_fingerprint,
    exhibit_timeout,
    ExhibitTimeoutError,
    format_outcome_table,
    run_exhibits,
)


@pytest.fixture
def fake_exhibits(monkeypatch, tmp_path):
    """Replace the registry with three tiny exhibits: ok, ok, failing."""
    calls = []

    def make(name, fail=False):
        def run(seed=42, scale=1.0, out_dir=None):
            calls.append(name)
            if fail:
                raise RuntimeError(f"{name} exploded")
            if out_dir is not None:
                from repro.experiments.common import save_json

                save_json(name, {"name": name, "seed": seed}, out_dir)
            return {"name": name}

        return run

    fakes = {"alpha": make("alpha"), "beta": make("beta", fail=True), "gamma": make("gamma")}
    monkeypatch.setattr(registry, "EXHIBITS", fakes)
    return calls


class TestRunExhibits:
    def test_all_ok_without_out_dir(self, fake_exhibits):
        outcomes = run_exhibits(["alpha", "gamma"], echo=lambda s: None)
        assert [o.status for o in outcomes] == [STATUS_OK, STATUS_OK]

    def test_failure_stops_without_keep_going(self, fake_exhibits):
        outcomes = run_exhibits(["alpha", "beta", "gamma"], echo=lambda s: None)
        assert [o.status for o in outcomes] == [STATUS_OK, STATUS_FAILED]
        assert "gamma" not in fake_exhibits

    def test_keep_going_runs_everything(self, fake_exhibits):
        outcomes = run_exhibits(
            ["alpha", "beta", "gamma"], keep_going=True, echo=lambda s: None
        )
        assert [o.status for o in outcomes] == [STATUS_OK, STATUS_FAILED, STATUS_OK]
        failed = outcomes[1]
        assert "beta exploded" in failed.error
        assert "RuntimeError" in failed.error  # full traceback, not just repr

    def test_manifest_records_every_exhibit(self, fake_exhibits, tmp_path):
        run_exhibits(
            ["alpha", "beta"],
            out_dir=str(tmp_path),
            keep_going=True,
            echo=lambda s: None,
        )
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["exhibits"]["alpha"]["status"] == STATUS_OK
        assert manifest["exhibits"]["beta"]["status"] == STATUS_FAILED
        assert "beta exploded" in manifest["exhibits"]["beta"]["error"]
        assert manifest["exhibits"]["alpha"]["fingerprint"] == exhibit_fingerprint(
            "alpha", 42, 1.0
        )

    def test_resume_skips_completed(self, fake_exhibits, tmp_path):
        run_exhibits(["alpha"], out_dir=str(tmp_path), echo=lambda s: None)
        fake_exhibits.clear()
        outcomes = run_exhibits(
            ["alpha", "gamma"], out_dir=str(tmp_path), resume=True, echo=lambda s: None
        )
        assert [o.status for o in outcomes] == [STATUS_SKIPPED, STATUS_OK]
        assert fake_exhibits == ["gamma"]  # alpha was not re-run

    def test_resume_reruns_on_fingerprint_mismatch(self, fake_exhibits, tmp_path):
        run_exhibits(["alpha"], out_dir=str(tmp_path), echo=lambda s: None)
        fake_exhibits.clear()
        outcomes = run_exhibits(
            ["alpha"], seed=7, out_dir=str(tmp_path), resume=True, echo=lambda s: None
        )
        assert outcomes[0].status == STATUS_OK
        assert fake_exhibits == ["alpha"]

    def test_resume_reruns_when_json_missing(self, fake_exhibits, tmp_path):
        run_exhibits(["alpha"], out_dir=str(tmp_path), echo=lambda s: None)
        (tmp_path / "alpha.json").unlink()
        fake_exhibits.clear()
        outcomes = run_exhibits(
            ["alpha"], out_dir=str(tmp_path), resume=True, echo=lambda s: None
        )
        assert outcomes[0].status == STATUS_OK
        assert fake_exhibits == ["alpha"]

    def test_resume_reruns_failed(self, fake_exhibits, tmp_path):
        run_exhibits(
            ["beta"], out_dir=str(tmp_path), keep_going=True, echo=lambda s: None
        )
        fake_exhibits.clear()
        run_exhibits(["beta"], out_dir=str(tmp_path), resume=True, echo=lambda s: None)
        assert fake_exhibits == ["beta"]

    def test_resume_without_out_dir_rejected(self, fake_exhibits):
        with pytest.raises(ValueError, match="resume requires"):
            run_exhibits(["alpha"], resume=True)

    def test_fresh_run_ignores_stale_manifest(self, fake_exhibits, tmp_path):
        run_exhibits(["alpha"], out_dir=str(tmp_path), echo=lambda s: None)
        fake_exhibits.clear()
        # Without resume, a new run starts a fresh manifest and re-runs.
        run_exhibits(["alpha"], out_dir=str(tmp_path), echo=lambda s: None)
        assert fake_exhibits == ["alpha"]


class TestTimeout:
    def test_timeout_marks_exhibit(self, monkeypatch, tmp_path):
        import time

        def sleepy(seed=42, scale=1.0, out_dir=None):
            time.sleep(5.0)
            return {}

        monkeypatch.setattr(registry, "EXHIBITS", {"sleepy": sleepy})
        outcomes = run_exhibits(
            ["sleepy"],
            out_dir=str(tmp_path),
            timeout_s=0.2,
            keep_going=True,
            echo=lambda s: None,
        )
        assert outcomes[0].status == STATUS_TIMEOUT
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["exhibits"]["sleepy"]["status"] == STATUS_TIMEOUT

    def test_exhibit_timeout_context_manager(self):
        import time

        with pytest.raises(ExhibitTimeoutError):
            with exhibit_timeout(0.05):
                time.sleep(1.0)
        # And it disarms cleanly: this must not raise.
        with exhibit_timeout(10.0):
            pass

    def test_no_timeout_is_noop(self):
        with exhibit_timeout(None):
            pass


class TestManifest:
    def test_load_or_create_survives_corrupt_file(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text("{truncated")
        manifest = RunManifest.load_or_create(path, seed=1, scale=0.5)
        assert manifest.exhibits == {}

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        manifest = RunManifest(tmp_path / MANIFEST_NAME, seed=1, scale=1.0)
        manifest.mark_running("x", "fp")
        assert not (tmp_path / (MANIFEST_NAME + ".tmp")).exists()
        assert json.loads((tmp_path / MANIFEST_NAME).read_text())


class TestOutcomeTable:
    def test_table_lists_all_and_counts(self):
        table = format_outcome_table(
            [
                ExhibitOutcome("fig2", STATUS_OK, 1.0),
                ExhibitOutcome("fig3", STATUS_FAILED, 2.0, "boom"),
                ExhibitOutcome("fig4", STATUS_SKIPPED, 0.0),
            ]
        )
        assert "fig2" in table and "failed" in table
        assert "2/3 exhibits ok" in table
