"""Execute the doctests embedded in module docstrings.

Several substrate modules carry usage examples in their docstrings; this
keeps them honest.
"""

import doctest

import pytest

import repro.core.batch
import repro.core.stream
import repro.disk.head
import repro.trace.record
import repro.util.rngtools
import repro.util.stats
import repro.util.units

MODULES = [
    repro.util.units,
    repro.util.rngtools,
    repro.util.stats,
    repro.trace.record,
    repro.disk.head,
    repro.core.batch,
    repro.core.stream,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tests = doctest.testmod(module)
    assert tests > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0
