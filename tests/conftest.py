"""Shared fixtures for the test suite."""

import pytest

from repro.trace.record import IORequest
from repro.trace.trace import Trace


@pytest.fixture
def tiny_trace() -> Trace:
    """A six-op trace exercising reads, writes and overlaps."""
    return Trace(
        [
            IORequest.write(0, 8, 0.0),
            IORequest.write(16, 8, 0.001),
            IORequest.read(0, 8, 0.002),
            IORequest.write(4, 4, 0.003),
            IORequest.read(0, 24, 0.004),
            IORequest.read(16, 8, 0.005),
        ],
        name="tiny",
    )


@pytest.fixture
def sequential_write_trace() -> Trace:
    """Sixteen back-to-back sequential writes (no seeks on any device)."""
    return Trace(
        [IORequest.write(i * 8, 8, i * 0.001) for i in range(16)],
        name="seqw",
    )
