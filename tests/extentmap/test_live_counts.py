"""Property tests: ZoneLiveCounts must agree with a dict-per-zone model.

:class:`~repro.extentmap.live_counts.ZoneLiveCounts` keeps the cleaning
translator's per-zone live-sector tallies as one int64 array so the batch
kernel can scatter-add whole invalidation batches.  The model here is the
obvious reference: one Python int per zone, every decrement split across
zone boundaries and clamped at zero per piece.  Any op soup that makes
them diverge — including the vectorized multi-range path against a
sequence of scalar decrements — is a bug in the repeat-expansion or the
clamp-at-the-end shortcut.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extentmap.live_counts import ZoneLiveCounts

ZONE_SECTORS = 16
N_ZONES = 8
SPACE = ZONE_SECTORS * N_ZONES


class _Model:
    """Dict-per-zone reference semantics (what the original ledger did)."""

    def __init__(self):
        self.counts = {z: 0 for z in range(N_ZONES)}

    def add(self, zone_id, sectors):
        self.counts[zone_id] += sectors

    def reset(self, zone_id):
        self.counts[zone_id] = 0

    def decrement_range(self, pba, length):
        end = pba + length
        while pba < end:
            zone_id = pba // ZONE_SECTORS
            take = min(end, (zone_id + 1) * ZONE_SECTORS) - pba
            self.counts[zone_id] = max(0, self.counts[zone_id] - take)
            pba += take


# Ranges stay in-bounds; lengths up to 3 zones wide to force splitting.
_ranges = st.tuples(
    st.integers(min_value=0, max_value=SPACE - 1),
    st.integers(min_value=1, max_value=3 * ZONE_SECTORS),
).map(lambda t: (t[0], min(t[1], SPACE - t[0])))

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.integers(min_value=0, max_value=N_ZONES - 1),
            st.integers(min_value=0, max_value=2 * ZONE_SECTORS),
        ),
        st.tuples(st.just("reset"), st.integers(min_value=0, max_value=N_ZONES - 1)),
        st.tuples(st.just("dec"), _ranges),
    ),
    max_size=60,
)


def _apply(ops):
    live = ZoneLiveCounts(zone_sectors=ZONE_SECTORS, n_zones=N_ZONES)
    model = _Model()
    for op in ops:
        if op[0] == "add":
            live.add(op[1], op[2])
            model.add(op[1], op[2])
        elif op[0] == "reset":
            live.reset(op[1])
            model.reset(op[1])
        else:
            pba, length = op[1]
            live.decrement_range(pba, length)
            model.decrement_range(pba, length)
    return live, model


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_op_soup_matches_dict_model(ops):
    live, model = _apply(ops)
    assert live.state_list() == [model.counts[z] for z in range(N_ZONES)]
    assert live.total() == sum(model.counts.values())
    for zone in range(N_ZONES):
        assert live.get(zone) == model.counts[zone]


@given(
    ops=_ops,
    batch=st.lists(_ranges, max_size=30),
)
@settings(max_examples=200, deadline=None)
def test_batched_decrement_equals_scalar_sequence(ops, batch):
    # decrement_ranges (single scatter-add + clamp at the end) must equal
    # the per-range scalar path — the clamp-commutes-with-batching claim.
    live_batched, _ = _apply(ops)
    live_scalar, _ = _apply(ops)
    live_batched.decrement_ranges(
        np.array([p for p, _ in batch], dtype=np.int64),
        np.array([n for _, n in batch], dtype=np.int64),
    )
    for pba, length in batch:
        live_scalar.decrement_range(pba, length)
    assert live_batched.state_list() == live_scalar.state_list()


# Non-overlapping extent sets (what a real address map exports): sort
# random in-bounds ranges and clip each to start after its predecessor.
def _disjoint(ranges):
    out = []
    cursor = 0
    for start, length in sorted(ranges):
        start = max(start, cursor)
        end = min(start + length, SPACE)
        if end > start:
            out.append((start, end - start))
            cursor = end
    return out


@given(ranges=st.lists(_ranges, max_size=30).map(_disjoint))
@settings(max_examples=200, deadline=None)
def test_recompute_from_extents_equals_incremental(ranges):
    # Rebuilding from disjoint extents must equal crediting each extent
    # incrementally (zone-splitting included) — the invariant the cleaning
    # kernel's wholesale recompute rests on.
    incremental = ZoneLiveCounts(zone_sectors=ZONE_SECTORS, n_zones=N_ZONES)
    model = _Model()
    for pba, length in ranges:
        end = pba + length
        cursor = pba
        while cursor < end:
            zone_id = cursor // ZONE_SECTORS
            take = min(end, (zone_id + 1) * ZONE_SECTORS) - cursor
            incremental.add(zone_id, take)
            model.add(zone_id, take)
            cursor += take
    rebuilt = ZoneLiveCounts(zone_sectors=ZONE_SECTORS, n_zones=N_ZONES)
    rebuilt.add(3, 999)  # recompute must overwrite stale state
    rebuilt.recompute_from_extents(
        np.array([p for p, _ in ranges], dtype=np.int64),
        np.array([n for _, n in ranges], dtype=np.int64),
    )
    assert rebuilt.state_list() == incremental.state_list()
    assert rebuilt.state_list() == [model.counts[z] for z in range(N_ZONES)]


def test_recompute_from_extents_empty_clears():
    live = ZoneLiveCounts(zone_sectors=ZONE_SECTORS, n_zones=N_ZONES)
    live.add(0, 7)
    live.recompute_from_extents(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    )
    assert live.state_list() == [0] * N_ZONES


@given(ops=_ops)
@settings(max_examples=100, deadline=None)
def test_state_round_trip(ops):
    live, _ = _apply(ops)
    restored = ZoneLiveCounts(zone_sectors=ZONE_SECTORS, n_zones=N_ZONES)
    restored.load_state_list(live.state_list())
    assert restored.state_list() == live.state_list()
    assert restored.counts.dtype == np.int64


def test_counts_never_negative_and_clamped():
    live = ZoneLiveCounts(zone_sectors=ZONE_SECTORS, n_zones=N_ZONES)
    live.add(0, 4)
    live.decrement_range(0, ZONE_SECTORS)  # over-decrement clamps, not wraps
    assert live.get(0) == 0
    live.decrement_ranges(
        np.array([0, ZONE_SECTORS], dtype=np.int64),
        np.array([8, 8], dtype=np.int64),
    )
    assert live.state_list() == [0] * N_ZONES


def test_constructor_validation():
    with pytest.raises(ValueError):
        ZoneLiveCounts(zone_sectors=0, n_zones=4)
    with pytest.raises(ValueError):
        ZoneLiveCounts(zone_sectors=8, n_zones=0)
    live = ZoneLiveCounts(zone_sectors=8, n_zones=4)
    with pytest.raises(ValueError):
        live.load_state_list([1, 2, 3])  # wrong zone count
