"""Extent record tests."""

import pytest

from repro.extentmap.extent import Extent


class TestExtentBasics:
    def test_ends(self):
        e = Extent(lba=10, pba=100, length=5)
        assert e.lba_end == 15
        assert e.pba_end == 105

    def test_pba_for(self):
        e = Extent(10, 100, 5)
        assert e.pba_for(10) == 100
        assert e.pba_for(14) == 104

    def test_pba_for_outside(self):
        e = Extent(10, 100, 5)
        with pytest.raises(ValueError):
            e.pba_for(15)
        with pytest.raises(ValueError):
            e.pba_for(9)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Extent(0, 0, 0)
        with pytest.raises(ValueError):
            Extent(-1, 0, 1)
        with pytest.raises(ValueError):
            Extent(0, -1, 1)

    def test_equality(self):
        assert Extent(1, 2, 3) == Extent(1, 2, 3)
        assert Extent(1, 2, 3) != Extent(1, 2, 4)
        assert Extent(1, 2, 3) != "not an extent"


class TestTrim:
    def test_trim_front(self):
        e = Extent(10, 100, 5)
        e.trim_front(2)
        assert (e.lba, e.pba, e.length) == (12, 102, 3)

    def test_trim_back(self):
        e = Extent(10, 100, 5)
        e.trim_back(2)
        assert (e.lba, e.pba, e.length) == (10, 100, 3)

    def test_trim_front_bounds(self):
        e = Extent(0, 0, 3)
        with pytest.raises(ValueError):
            e.trim_front(0)
        with pytest.raises(ValueError):
            e.trim_front(3)

    def test_trim_back_bounds(self):
        e = Extent(0, 0, 3)
        with pytest.raises(ValueError):
            e.trim_back(3)
