"""BlockMap reference-implementation tests."""

import pytest

from repro.extentmap.base import Segment
from repro.extentmap.block_map import BlockMap


@pytest.fixture
def bmap():
    return BlockMap()


class TestBlockMap:
    def test_unmapped_hole(self, bmap):
        assert bmap.lookup(0, 5) == [Segment(0, None, 5)]

    def test_simple_map(self, bmap):
        bmap.map_range(10, 1000, 4)
        assert bmap.lookup(10, 4) == [Segment(10, 1000, 4)]

    def test_run_coalescing(self, bmap):
        bmap.map_range(0, 100, 2)
        bmap.map_range(2, 102, 2)
        assert bmap.lookup(0, 4) == [Segment(0, 100, 4)]

    def test_discontiguous_runs(self, bmap):
        bmap.map_range(0, 100, 2)
        bmap.map_range(2, 200, 2)
        assert bmap.lookup(0, 4) == [Segment(0, 100, 2), Segment(2, 200, 2)]

    def test_overwrite(self, bmap):
        bmap.map_range(0, 100, 4)
        bmap.map_range(1, 200, 2)
        assert bmap.lookup(0, 4) == [
            Segment(0, 100, 1),
            Segment(1, 200, 2),
            Segment(3, 103, 1),
        ]

    def test_mapped_extent_count(self, bmap):
        bmap.map_range(0, 100, 2)
        bmap.map_range(2, 102, 2)   # merges with previous
        bmap.map_range(10, 300, 1)
        assert bmap.mapped_extent_count() == 2

    def test_mapped_extent_count_empty(self, bmap):
        assert bmap.mapped_extent_count() == 0

    def test_mapped_sector_count(self, bmap):
        bmap.map_range(0, 100, 4)
        bmap.map_range(2, 200, 4)
        assert bmap.mapped_sector_count() == 6

    def test_invalid_args(self, bmap):
        with pytest.raises(ValueError):
            bmap.map_range(0, 0, 0)
        with pytest.raises(ValueError):
            bmap.lookup(0, 0)
