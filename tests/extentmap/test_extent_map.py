"""ExtentMap behavioural tests (overwrite semantics, merging, lookup)."""

import pytest

from repro.extentmap.base import Segment
from repro.extentmap.extent_map import ExtentMap


@pytest.fixture
def emap():
    return ExtentMap()


class TestLookupEmpty:
    def test_unmapped_is_single_hole(self, emap):
        assert emap.lookup(0, 10) == [Segment(0, None, 10)]

    def test_invalid_lookup(self, emap):
        with pytest.raises(ValueError):
            emap.lookup(0, 0)


class TestMapRange:
    def test_simple_map(self, emap):
        emap.map_range(10, 1000, 5)
        assert emap.lookup(10, 5) == [Segment(10, 1000, 5)]

    def test_partial_lookup(self, emap):
        emap.map_range(10, 1000, 5)
        assert emap.lookup(12, 2) == [Segment(12, 1002, 2)]

    def test_lookup_with_edges(self, emap):
        emap.map_range(10, 1000, 5)
        segments = emap.lookup(8, 10)
        assert segments == [
            Segment(8, None, 2),
            Segment(10, 1000, 5),
            Segment(15, None, 3),
        ]

    def test_invalid_map(self, emap):
        with pytest.raises(ValueError):
            emap.map_range(0, 0, 0)
        with pytest.raises(ValueError):
            emap.map_range(-1, 0, 1)


class TestOverwrite:
    def test_full_overwrite(self, emap):
        emap.map_range(0, 100, 10)
        emap.map_range(0, 200, 10)
        assert emap.lookup(0, 10) == [Segment(0, 200, 10)]
        assert len(emap) == 1

    def test_middle_split(self, emap):
        emap.map_range(0, 100, 10)
        emap.map_range(3, 200, 4)
        assert emap.lookup(0, 10) == [
            Segment(0, 100, 3),
            Segment(3, 200, 4),
            Segment(7, 107, 3),
        ]
        assert len(emap) == 3

    def test_front_overlap(self, emap):
        emap.map_range(5, 100, 10)
        emap.map_range(0, 200, 8)
        assert emap.lookup(0, 15) == [
            Segment(0, 200, 8),
            Segment(8, 103, 7),
        ]

    def test_back_overlap(self, emap):
        emap.map_range(0, 100, 10)
        emap.map_range(8, 200, 8)
        assert emap.lookup(0, 16) == [
            Segment(0, 100, 8),
            Segment(8, 200, 8),
        ]

    def test_overwrite_spanning_multiple_extents(self, emap):
        emap.map_range(0, 100, 4)
        emap.map_range(4, 200, 4)
        emap.map_range(8, 300, 4)
        emap.map_range(2, 400, 8)
        assert emap.lookup(0, 12) == [
            Segment(0, 100, 2),
            Segment(2, 400, 8),
            Segment(10, 302, 2),
        ]

    def test_exact_replacement_of_middle_extent(self, emap):
        emap.map_range(0, 100, 4)
        emap.map_range(4, 200, 4)
        emap.map_range(8, 300, 4)
        emap.map_range(4, 500, 4)
        assert emap.lookup(4, 4) == [Segment(4, 500, 4)]
        assert len(emap) == 3


class TestMerging:
    def test_adjacent_contiguous_merge(self, emap):
        emap.map_range(0, 100, 4)
        emap.map_range(4, 104, 4)
        assert len(emap) == 1
        assert emap.lookup(0, 8) == [Segment(0, 100, 8)]

    def test_adjacent_non_contiguous_no_merge(self, emap):
        emap.map_range(0, 100, 4)
        emap.map_range(4, 200, 4)
        assert len(emap) == 2

    def test_merge_both_sides(self, emap):
        emap.map_range(0, 100, 4)
        emap.map_range(8, 108, 4)
        emap.map_range(4, 104, 4)
        assert len(emap) == 1
        assert emap.lookup(0, 12) == [Segment(0, 100, 12)]

    def test_logical_adjacent_physical_gap_no_merge(self, emap):
        emap.map_range(0, 100, 4)
        emap.map_range(4, 105, 4)
        assert len(emap) == 2


class TestCounters:
    def test_mapped_extent_count(self, emap):
        emap.map_range(0, 100, 4)
        emap.map_range(10, 200, 4)
        assert emap.mapped_extent_count() == 2

    def test_mapped_sector_count(self, emap):
        emap.map_range(0, 100, 4)
        emap.map_range(2, 200, 4)  # overlaps two sectors
        assert emap.mapped_sector_count() == 6

    def test_fragment_count(self, emap):
        emap.map_range(2, 100, 2)
        emap.map_range(6, 200, 2)
        # [hole, piece, hole, piece, hole]
        assert emap.fragment_count(0, 10) == 5

    def test_hole_merging_in_lookup(self, emap):
        segments = emap.lookup(0, 100)
        assert len(segments) == 1 and segments[0].is_hole


class TestSegmentValidation:
    def test_segment_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Segment(0, 0, 0)

    def test_segment_rejects_negative(self):
        with pytest.raises(ValueError):
            Segment(-1, 0, 1)
        with pytest.raises(ValueError):
            Segment(0, -1, 1)

    def test_segment_ends(self):
        s = Segment(10, 100, 5)
        assert s.lba_end == 15 and s.pba_end == 105
        assert Segment(0, None, 5).pba_end is None
