"""ArrayExtentMap behavioural tests (overlay/flush model, batch entry
points, canonical export/import, steady-state allocation tripwire)."""

import numpy as np
import pytest

from repro.extentmap.array_map import ArrayExtentMap, DEFAULT_FLUSH_THRESHOLD
from repro.extentmap.base import Segment
from repro.extentmap.extent_map import ExtentMap


def _triples(mapping):
    return [(e.lba, e.pba, e.length) for e in mapping]


@pytest.fixture
def amap():
    return ArrayExtentMap()


class TestScalarInterface:
    def test_unmapped_is_single_hole(self, amap):
        assert amap.lookup(0, 10) == [Segment(0, None, 10)]

    def test_simple_map(self, amap):
        amap.map_range(10, 1000, 5)
        assert amap.lookup(10, 5) == [Segment(10, 1000, 5)]

    def test_middle_split_overwrite(self, amap):
        amap.map_range(0, 100, 10)
        amap.map_range(3, 200, 4)
        assert amap.lookup(0, 10) == [
            Segment(0, 100, 3),
            Segment(3, 200, 4),
            Segment(7, 107, 3),
        ]
        assert len(amap) == 3

    def test_adjacent_extents_merge(self, amap):
        amap.map_range(0, 100, 5)
        amap.map_range(5, 105, 5)
        amap.flush()
        assert len(amap) == 1
        assert amap.lookup(0, 10) == [Segment(0, 100, 10)]

    def test_invalid_arguments(self, amap):
        with pytest.raises(ValueError):
            amap.map_range(0, 0, 0)
        with pytest.raises(ValueError):
            amap.map_range(-1, 0, 1)
        with pytest.raises(ValueError):
            amap.lookup(0, 0)
        with pytest.raises(ValueError):
            amap.lookup_pieces(0, -3)


class TestFlushModel:
    def test_flush_is_semantically_invisible(self):
        eager = ArrayExtentMap(flush_threshold=2)
        lazy = ArrayExtentMap(flush_threshold=10_000)
        for i in range(64):
            lba = (i * 7) % 40
            eager.map_range(lba, 1000 + i * 10, 3)
            lazy.map_range(lba, 1000 + i * 10, 3)
        assert eager.flush_count > 0
        assert _triples(eager) == _triples(lazy)

    def test_explicit_flush_drains_overlay(self, amap):
        amap.map_range(0, 100, 10)
        amap.flush()
        flushes = amap.flush_count
        amap.flush()  # empty overlay: no work, no counter bump
        assert amap.flush_count == flushes

    def test_threshold_triggers_flush(self):
        amap = ArrayExtentMap(flush_threshold=4)
        for i in range(16):
            amap.map_range(i * 10, 5000 + i, 1)  # disjoint: overlay grows
        assert amap.flush_count >= 1

    def test_default_threshold(self, amap):
        assert DEFAULT_FLUSH_THRESHOLD == 4096


class TestBatchEntryPoints:
    def test_map_range_batch_equals_scalar_loop(self):
        rows = [(0, 100, 10), (3, 200, 4), (20, 300, 8), (22, 400, 2)]
        batch = ArrayExtentMap()
        batch.map_range_batch(
            np.array([r[0] for r in rows], dtype=np.int64),
            np.array([r[1] for r in rows], dtype=np.int64),
            np.array([r[2] for r in rows], dtype=np.int64),
        )
        scalar = ArrayExtentMap()
        for lba, pba, length in rows:
            scalar.map_range(lba, pba, length)
        assert _triples(batch) == _triples(scalar)

    def test_lookup_pieces_batch_equals_scalar(self, amap):
        amap.map_range(0, 100, 10)
        amap.map_range(3, 200, 4)
        queries = [(0, 10), (5, 2), (8, 6), (50, 3)]
        pba, length, hole, offsets = amap.lookup_pieces_batch(
            np.array([q[0] for q in queries], dtype=np.int64),
            np.array([q[1] for q in queries], dtype=np.int64),
        )
        assert offsets[0] == 0 and offsets[-1] == len(pba)
        for i, (qlba, qlen) in enumerate(queries):
            got = list(
                zip(
                    pba[offsets[i] : offsets[i + 1]].tolist(),
                    length[offsets[i] : offsets[i + 1]].tolist(),
                    hole[offsets[i] : offsets[i + 1]].tolist(),
                )
            )
            assert got == amap.lookup_pieces(qlba, qlen), (qlba, qlen)

    def test_lookup_pieces_batch_empty(self, amap):
        pba, length, hole, offsets = amap.lookup_pieces_batch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(pba) == len(length) == len(hole) == 0
        assert offsets.tolist() == [0]

    def test_lookup_pieces_batch_rejects_bad_length(self, amap):
        with pytest.raises(ValueError):
            amap.lookup_pieces_batch(
                np.array([0, 5], dtype=np.int64), np.array([4, 0], dtype=np.int64)
            )


class TestExtentArrays:
    def _populate(self, target):
        for i in range(50):
            target.map_range((i * 13) % 70, 2000 + i * 10, 1 + (i % 5))
        return target

    def test_exports_match_extent_map(self):
        amap = self._populate(ArrayExtentMap())
        emap = self._populate(ExtentMap())
        for ours, oracle in zip(amap.extent_arrays(), emap.extent_arrays()):
            assert np.array_equal(np.asarray(ours), np.asarray(oracle))

    def test_round_trip_both_classes(self):
        amap = self._populate(ArrayExtentMap())
        arrays = amap.extent_arrays()
        for cls in (ArrayExtentMap, ExtentMap):
            rebuilt = cls.from_extent_arrays(*arrays)
            assert _triples(rebuilt) == _triples(amap)

    @pytest.mark.parametrize("cls", [ArrayExtentMap, ExtentMap])
    def test_from_extent_arrays_rejects_nonpositive_length(self, cls):
        with pytest.raises(ValueError):
            cls.from_extent_arrays([0, 10], [100, 200], [5, 0])

    @pytest.mark.parametrize("cls", [ArrayExtentMap, ExtentMap])
    def test_from_extent_arrays_rejects_overlap(self, cls):
        with pytest.raises(ValueError):
            cls.from_extent_arrays([0, 3], [100, 200], [5, 2])


class TestSteadyStateAllocation:
    def test_no_per_flush_realloc_at_steady_state(self):
        """Perf tripwire: once the base arrays have grown to the map's
        working size, further overwrite/flush cycles must reuse them —
        a realloc per flush would silently reintroduce the per-call
        allocation cost the two-level design exists to amortize."""
        amap = ArrayExtentMap(flush_threshold=256)
        rng = np.random.default_rng(7)
        lbas = rng.integers(0, 20_000, size=20_000)
        for i, lba in enumerate(lbas.tolist()):
            amap.map_range(lba, 1_000_000 + i * 8, 8)
        flushes_before = amap.flush_count
        reallocs_before = amap.realloc_count
        # Same address space: the map no longer grows, so flushes recycle.
        for i, lba in enumerate(lbas[:4096].tolist()):
            amap.map_range(lba, 9_000_000 + i * 8, 8)
        amap.flush()
        assert amap.flush_count > flushes_before
        assert amap.realloc_count == reallocs_before
