"""Property tests: ArrayExtentMap must agree with the ExtentMap oracle.

ExtentMap is the pure-Python differential oracle (itself proven against
the per-sector BlockMap specification in ``tests/property``); the
numpy-backed two-level ArrayExtentMap is the kernel tier.  Any op soup
that makes them diverge — on scalar lookups, batch lookups, canonical
exports, or across different flush thresholds — is a bug in the overlay
merge, the base resolve, or the dirty-flush splice.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.extentmap.array_map import ArrayExtentMap
from repro.extentmap.extent_map import ExtentMap

ADDRESS_SPACE = 192

write_soup = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),  # lba
        st.integers(min_value=1, max_value=24),                 # length
        st.integers(min_value=0, max_value=50_000),             # pba
    ),
    min_size=0,
    max_size=60,
)

query_soup = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),
        st.integers(min_value=1, max_value=48),
    ),
    min_size=1,
    max_size=40,
)

#: Thresholds bracketing "flush every write" through "never auto-flush".
thresholds = st.sampled_from([1, 2, 3, 7, 4096])


def _build(writes, threshold):
    amap = ArrayExtentMap(flush_threshold=threshold)
    oracle = ExtentMap()
    for lba, length, pba in writes:
        amap.map_range(lba, pba, length)
        oracle.map_range(lba, pba, length)
    return amap, oracle


class TestScalarEquivalence:
    @given(writes=write_soup, queries=query_soup, threshold=thresholds)
    @settings(max_examples=200, deadline=None)
    def test_lookup_pieces_matches_oracle(self, writes, queries, threshold):
        amap, oracle = _build(writes, threshold)
        for lba, length in queries:
            assert amap.lookup_pieces(lba, length) == oracle.lookup_pieces(
                lba, length
            )

    @given(writes=write_soup, queries=query_soup, threshold=thresholds)
    @settings(max_examples=150, deadline=None)
    def test_lookup_matches_oracle(self, writes, queries, threshold):
        amap, oracle = _build(writes, threshold)
        for lba, length in queries:
            assert amap.lookup(lba, length) == oracle.lookup(lba, length)

    @given(writes=write_soup, threshold=thresholds)
    @settings(max_examples=150, deadline=None)
    def test_counters_match_oracle(self, writes, threshold):
        amap, oracle = _build(writes, threshold)
        assert amap.mapped_sector_count() == oracle.mapped_sector_count()
        assert amap.mapped_extent_count() == oracle.mapped_extent_count()

    @given(writes=write_soup, threshold=thresholds)
    @settings(max_examples=150, deadline=None)
    def test_extent_arrays_match_oracle(self, writes, threshold):
        amap, oracle = _build(writes, threshold)
        for ours, theirs in zip(amap.extent_arrays(), oracle.extent_arrays()):
            assert np.array_equal(np.asarray(ours), np.asarray(theirs))


class TestBatchEquivalence:
    @given(writes=write_soup, queries=query_soup, threshold=thresholds)
    @settings(max_examples=200, deadline=None)
    def test_lookup_pieces_batch_matches_scalar(self, writes, queries, threshold):
        """The batch resolve — including the dirty-count flush heuristic
        and the overlay splice — must equal per-query scalar lookups."""
        amap, oracle = _build(writes, threshold)
        lba = np.array([q[0] for q in queries], dtype=np.int64)
        length = np.array([q[1] for q in queries], dtype=np.int64)
        pba, piece_len, hole, offsets = amap.lookup_pieces_batch(lba, length)
        assert offsets[0] == 0 and offsets[-1] == len(pba)
        for i, (qlba, qlen) in enumerate(queries):
            got = list(
                zip(
                    pba[offsets[i] : offsets[i + 1]].tolist(),
                    piece_len[offsets[i] : offsets[i + 1]].tolist(),
                    hole[offsets[i] : offsets[i + 1]].tolist(),
                )
            )
            assert got == oracle.lookup_pieces(qlba, qlen), (qlba, qlen)

    @given(writes=write_soup, threshold=thresholds)
    @settings(max_examples=150, deadline=None)
    def test_map_range_batch_matches_scalar_writes(self, writes, threshold):
        if not writes:
            return
        batch = ArrayExtentMap(flush_threshold=threshold)
        batch.map_range_batch(
            np.array([w[0] for w in writes], dtype=np.int64),
            np.array([w[2] for w in writes], dtype=np.int64),
            np.array([w[1] for w in writes], dtype=np.int64),
        )
        _, oracle = _build(writes, threshold)
        for ours, theirs in zip(batch.extent_arrays(), oracle.extent_arrays()):
            assert np.array_equal(np.asarray(ours), np.asarray(theirs))


class TestFlushInvariance:
    @given(writes=write_soup, queries=query_soup)
    @settings(max_examples=150, deadline=None)
    def test_threshold_is_unobservable(self, writes, queries):
        """Results must be identical whatever the flush cadence — the
        overlay/base split is an implementation detail."""
        eager, _ = _build(writes, 1)
        lazy, _ = _build(writes, 4096)
        lazy_interleaved = ArrayExtentMap(flush_threshold=4096)
        for i, (lba, length, pba) in enumerate(writes):
            lazy_interleaved.map_range(lba, pba, length)
            if i % 5 == 0:
                lazy_interleaved.flush()
        for candidate in (lazy, lazy_interleaved):
            for lba, length in queries:
                assert candidate.lookup_pieces(lba, length) == eager.lookup_pieces(
                    lba, length
                )
        for ours, theirs in zip(eager.extent_arrays(), lazy.extent_arrays()):
            assert np.array_equal(np.asarray(ours), np.asarray(theirs))
