"""Atomic file writing."""

import json
import os

import pytest

from repro.util.io import atomic_write_json, atomic_write_text


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = atomic_write_text(tmp_path / "a.txt", "hello")
        assert path.read_text() == "hello"

    def test_no_tmp_file_remains(self, tmp_path):
        atomic_write_json(tmp_path / "a.json", {"x": 1})
        assert os.listdir(tmp_path) == ["a.json"]

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "a.json"
        atomic_write_json(target, {"v": 1})
        atomic_write_json(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}

    def test_json_is_sorted_and_newline_terminated(self, tmp_path):
        target = atomic_write_json(tmp_path / "a.json", {"b": 1, "a": 2})
        text = target.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')

    def test_failed_serialization_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "a.json"
        atomic_write_json(target, {"v": 1})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"v": object()})
        assert json.loads(target.read_text()) == {"v": 1}
