"""Validation-helper tests."""

import pytest

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_range,
    check_type,
)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_accepts_positive(self):
        assert check_non_negative("x", 5.5) == 5.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_non_negative("x", -1)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("n", 1) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="n must be > 0"):
            check_positive("n", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("n", -3)


class TestCheckRange:
    def test_accepts_bounds(self):
        assert check_range("f", 0.0, 0.0, 1.0) == 0.0
        assert check_range("f", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"f must be in \[0.0, 1.0\]"):
            check_range("f", 1.5, 0.0, 1.0)


class TestCheckType:
    def test_accepts_exact_type(self):
        assert check_type("x", 3, int) == 3

    def test_rejects_bool_as_int(self):
        with pytest.raises(TypeError, match="x must be int, got bool"):
            check_type("x", True, int)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "3", int)

    def test_tuple_of_types(self):
        assert check_type("x", 3.5, (int, float)) == 3.5
