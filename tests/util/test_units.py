"""Unit-conversion tests."""

import pytest

from repro.util import units


class TestBytesToSectors:
    def test_exact_sector(self):
        assert units.bytes_to_sectors(512) == 1

    def test_rounds_up(self):
        assert units.bytes_to_sectors(513) == 2

    def test_zero(self):
        assert units.bytes_to_sectors(0) == 0

    def test_just_below_sector(self):
        assert units.bytes_to_sectors(511) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.bytes_to_sectors(-1)


class TestRoundTrips:
    def test_sectors_to_bytes(self):
        assert units.sectors_to_bytes(3) == 1536

    def test_kib_round_trip(self):
        assert units.sectors_to_kib(units.kib_to_sectors(64)) == 64.0

    def test_mib_round_trip(self):
        assert units.sectors_to_mib(units.mib_to_sectors(7)) == 7.0

    def test_gib_round_trip(self):
        assert units.sectors_to_gib(units.gib_to_sectors(2)) == 2.0

    def test_fractional_kib_rounds_up(self):
        assert units.kib_to_sectors(0.25) == 1

    def test_constants_consistent(self):
        assert units.SECTORS_PER_KIB == 2
        assert units.SECTORS_PER_MIB == 2048
        assert units.SECTORS_PER_GIB == 2048 * 1024


class TestFormatSectors:
    def test_bytes(self):
        assert units.format_sectors(1) == "512B"

    def test_kib(self):
        assert units.format_sectors(4) == "2.0KiB"

    def test_mib(self):
        assert units.format_sectors(2048) == "1.0MiB"

    def test_gib(self):
        assert units.format_sectors(units.gib_to_sectors(3)) == "3.00GiB"

    def test_negative_keeps_sign(self):
        assert units.format_sectors(-4) == "-2.0KiB"

    def test_zero(self):
        assert units.format_sectors(0) == "0B"
