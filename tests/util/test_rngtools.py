"""Deterministic RNG plumbing tests."""

import pytest

from repro.util.rngtools import SeedSequenceFactory, spawn_rng, zipf_weights


class TestSeedSequenceFactory:
    def test_same_label_same_seed(self):
        factory = SeedSequenceFactory(7)
        assert factory.seed_for("a") == factory.seed_for("a")

    def test_different_labels_differ(self):
        factory = SeedSequenceFactory(7)
        assert factory.seed_for("a") != factory.seed_for("b")

    def test_different_roots_differ(self):
        assert SeedSequenceFactory(1).seed_for("a") != SeedSequenceFactory(2).seed_for("a")

    def test_rng_streams_reproducible(self):
        a = SeedSequenceFactory(42).rng_for("writes")
        b = SeedSequenceFactory(42).rng_for("writes")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_rng_streams_independent_of_order(self):
        f1 = SeedSequenceFactory(42)
        r1 = f1.rng_for("a").random()
        f2 = SeedSequenceFactory(42)
        f2.rng_for("zzz")  # consuming another stream first must not matter
        assert f2.rng_for("a").random() == r1

    def test_spawn_rng_shortcut(self):
        assert spawn_rng(42, "x").random() == SeedSequenceFactory(42).rng_for("x").random()


class TestZipfWeights:
    def test_normalized(self):
        assert abs(sum(zipf_weights(100, 1.1)) - 1.0) < 1e-9

    def test_monotone_decreasing(self):
        weights = zipf_weights(10, 0.8)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_alpha_zero_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(abs(w - 0.25) < 1e-12 for w in weights)

    def test_higher_alpha_more_skew(self):
        flat = zipf_weights(50, 0.5)
        steep = zipf_weights(50, 2.0)
        assert steep[0] > flat[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)
