"""Streaming-statistics tests."""

import math

import pytest

from repro.util.stats import (
    Histogram,
    OnlineStats,
    cdf_at,
    empirical_cdf,
    quantile_from_cdf,
    weighted_percentile,
)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.min == s.max == 5.0

    def test_known_variance(self):
        s = OnlineStats()
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert abs(s.mean - 5.0) < 1e-12
        assert abs(s.variance - 32.0 / 7.0) < 1e-12

    def test_total(self):
        s = OnlineStats()
        s.extend([1, 2, 3])
        assert s.total == 6

    def test_min_max_empty_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().min

    def test_matches_batch_computation(self):
        values = [math.sin(i) * 10 for i in range(100)]
        s = OnlineStats()
        s.extend(values)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert abs(s.mean - mean) < 1e-9
        assert abs(s.variance - var) < 1e-9


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram(bucket_width=10)
        h.add(5)
        h.add(9)
        h.add(10)
        assert h.items() == [(0, 2), (10, 1)]

    def test_negative_keys(self):
        h = Histogram(bucket_width=10)
        h.add(-1)
        assert h.items() == [(-10, 1)]

    def test_cdf(self):
        h = Histogram(bucket_width=1)
        for v in (1, 1, 2, 3):
            h.add(v)
        assert h.cdf() == [(1, 0.5), (2, 0.75), (3, 1.0)]

    def test_total(self):
        h = Histogram()
        h.add(0, count=5)
        assert h.total == 5

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=0)


class TestWeightedPercentile:
    def test_median(self):
        assert weighted_percentile([10, 20, 30], [1, 1, 2], 0.5) == 20

    def test_full_fraction(self):
        assert weighted_percentile([1, 2, 3], [1, 1, 1], 1.0) == 3

    def test_unsorted_input(self):
        assert weighted_percentile([30, 10, 20], [2, 1, 1], 0.25) == 10

    def test_errors(self):
        with pytest.raises(ValueError):
            weighted_percentile([], [], 0.5)
        with pytest.raises(ValueError):
            weighted_percentile([1], [1, 2], 0.5)
        with pytest.raises(ValueError):
            weighted_percentile([1], [1], 1.5)


class TestEmpiricalCdf:
    def test_basic(self):
        assert empirical_cdf([1, 1, 3]) == [(1, 2 / 3), (3, 1.0)]

    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_cdf_at(self):
        cdf = empirical_cdf([1, 2, 3, 4])
        assert cdf_at(cdf, 0) == 0.0
        assert cdf_at(cdf, 2) == 0.5
        assert cdf_at(cdf, 10) == 1.0

    def test_quantile(self):
        cdf = empirical_cdf([1, 2, 3, 4])
        assert quantile_from_cdf(cdf, 0.5) == 2
        assert quantile_from_cdf(cdf, 1.0) == 4

    def test_quantile_empty_raises(self):
        with pytest.raises(ValueError):
            quantile_from_cdf([], 0.5)
