"""Concurrent same-key writers: the loser detects the winner.

Two processes publishing the same store entry is the normal steady state
of a shared on-disk store (``--jobs N`` workers, several hosts on one
filesystem).  The commit discipline makes the race *safe* — one atomic
rename wins — but safety alone is not enough: the loser must *know* it
lost, reuse the published entry, and report the outcome as a hit so the
caller's accounting stays truthful.  These tests race two real processes
through a barrier so both writers build their temp directories before
either publishes.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

import numpy as np
import pytest

from repro.core.stream import record_fragment_stream
from repro.core.stream_store import StreamStore
from repro.trace.store import TraceStore, synthetic_meta
from repro.util.npystore import commit_entry_dir, load_mmap_npy
from repro.workloads import synthesize_workload

SEED, SCALE = 11, 0.01


def _entry_arrays():
    return {"payload": np.arange(2048, dtype=np.int64)}


def _race_commit(root: str, barrier, queue) -> None:
    arrays = _entry_arrays()
    barrier.wait()
    outcome = commit_entry_dir(Path(root) / "entry", arrays, {"schema": 1})
    queue.put(bool(outcome.won))


def _race_trace_store(root: str, barrier, queue) -> None:
    trace = synthesize_workload("hm_1", seed=SEED, scale=SCALE)
    meta = synthetic_meta("hm_1", SEED, SCALE)
    store = TraceStore(root)
    barrier.wait()
    store.store(trace, meta)
    queue.put(store.hits)


def _race_stream_store(root: str, barrier, queue) -> None:
    trace = synthesize_workload("hm_1", seed=SEED, scale=SCALE)
    stream = record_fragment_stream(trace)
    store = StreamStore(root)
    barrier.wait()
    store.store_stream(trace, stream)
    queue.put(store.hits)


def _run_pair(target, root: Path):
    """Race two processes through ``target``; return their queue payloads."""
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=target, args=(str(root), barrier, queue))
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    results = [queue.get(timeout=60) for _ in range(2)]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    return results


def test_two_processes_racing_commit_one_wins_one_detects(tmp_path):
    outcomes = _run_pair(_race_commit, tmp_path)
    # Exactly one writer's rename landed; the other detected the winner.
    assert sorted(outcomes) == [False, True]
    entry = tmp_path / "entry"
    assert entry.is_dir()
    # No temp debris from either writer survives the race.
    assert [p.name for p in tmp_path.glob("*.tmp")] == []
    payload = load_mmap_npy(entry / "payload.npy")
    assert np.array_equal(payload, _entry_arrays()["payload"])


def test_trace_store_race_loser_counts_hit_and_entry_is_served(tmp_path):
    hits = _run_pair(_race_trace_store, tmp_path / "store")
    assert sorted(hits) == [0, 1]
    store = TraceStore(tmp_path / "store")
    loaded = store.load(synthetic_meta("hm_1", SEED, SCALE))
    assert loaded is not None
    reference = synthesize_workload("hm_1", seed=SEED, scale=SCALE)
    assert len(loaded) == len(reference)
    assert store.hits == 1


def test_stream_store_race_loser_counts_hit_and_entry_is_served(tmp_path):
    hits = _run_pair(_race_stream_store, tmp_path / "streams")
    assert sorted(hits) == [0, 1]
    trace = synthesize_workload("hm_1", seed=SEED, scale=SCALE)
    store = StreamStore(tmp_path / "streams")
    loaded = store.load_stream(trace)
    assert loaded is not None
    reference = record_fragment_stream(trace)
    assert np.array_equal(loaded.pba, reference.pba)
    assert loaded.accesses == reference.accesses


def test_second_commit_of_published_entry_reports_lost_without_rebuilding(
    tmp_path,
):
    first = commit_entry_dir(tmp_path / "entry", _entry_arrays(), {"schema": 1})
    assert first.won
    mtime = (tmp_path / "entry" / "payload.npy").stat().st_mtime_ns
    second = commit_entry_dir(tmp_path / "entry", _entry_arrays(), {"schema": 1})
    assert not second.won
    assert second.path == first.path
    # The already-published entry stands untouched.
    assert (tmp_path / "entry" / "payload.npy").stat().st_mtime_ns == mtime


def test_outcome_is_path_like(tmp_path):
    import os

    outcome = commit_entry_dir(tmp_path / "entry", _entry_arrays(), {"s": 1})
    assert os.fspath(outcome) == str(tmp_path / "entry")
    path, won = outcome
    assert isinstance(path, Path) and won is True
