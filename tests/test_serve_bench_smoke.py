"""Tier-1 gate for the serving benchmark harness (``make serve-bench-smoke``).

``benchmarks/bench_serving.py`` is a plain script outside the package; a
refactor of the load harness, the client, or the daemon can break it
without any tier-1 import noticing.  This runs the whole thing — three
end-to-end daemon runs (JSON reference, JSON large-batch, binary) plus
the durability micro — at a tiny op count in a subprocess, purely to
prove the harness executes and emits the report shape
``check_regression.py --serving`` consumes.  No speedup is gated at this
scale (worker startup dominates); the ratio gates run against the
checked-in 1M-op ``BENCH_serving.json`` via ``make bench``.

The subprocess boundary doubles as a hard watchdog: a wedged daemon or
load thread fails the test instead of hanging the suite.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The smoke run takes ~15 s; a wedged service never finishes.
WATCHDOG_S = 240


@pytest.mark.slow
def test_serving_benchmark_runs_at_smoke_scale(tmp_path):
    out = tmp_path / "BENCH_serving_smoke.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    command = [
        sys.executable,
        str(REPO_ROOT / "benchmarks" / "bench_serving.py"),
        "--ops",
        "20000",
        "--out",
        str(out),
    ]
    try:
        proc = subprocess.run(
            command,
            env=env,
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=WATCHDOG_S,
        )
    except subprocess.TimeoutExpired as exc:
        pytest.fail(
            f"bench_serving wedged past the {WATCHDOG_S}s watchdog\n"
            f"stdout:\n{exc.stdout}\nstderr:\n{exc.stderr}"
        )
    assert proc.returncode == 0, (
        f"bench_serving failed ({proc.returncode})\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )

    report = json.loads(out.read_text())
    assert report["ops"] == 20_000
    serving = report["results"]["serving"]
    for side in ("reference", "reference_large_batch", "binary"):
        assert serving[side]["ops"] == 20_000
        assert serving[side]["seconds"] > 0
        assert serving[side]["resyncs"] == 0
    assert serving["binary"]["speedup_vs_reference"] > 0
    # The latency/footprint observables the 1M gate requires must be
    # present at every scale — this is the shape contract.
    assert serving["binary"]["apply_p99_ms"] > 0
    assert serving["binary"]["query_p99_ms"] > 0
    assert serving["binary"]["queries"] > 0
    assert report["peak_rss_mib"] > 0

    durability = report["results"]["durability"]
    assert durability["group_commit"]["speedup_vs_reference"] > 0

    # And the checked-in 1M report must still satisfy the gate itself.
    gate = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "check_regression.py"),
            "--serving",
            str(REPO_ROOT / "benchmarks" / "BENCH_serving.json"),
        ],
        env=env,
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert gate.returncode == 0, (
        f"checked-in BENCH_serving.json fails its own gate\n"
        f"stdout:\n{gate.stdout}\nstderr:\n{gate.stderr}"
    )
