"""WorkloadSpec validation tests."""

import pytest

from repro.workloads.spec import ReadMix, WorkloadSpec, WriteMix


def make_spec(**overrides):
    defaults = dict(
        name="t",
        family="msr",
        total_ops=1000,
        read_fraction=0.5,
        mean_read_kib=16.0,
        mean_write_kib=16.0,
        working_set_mib=64,
        hot_mib=8,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestMixes:
    def test_weights_must_be_non_negative(self):
        with pytest.raises(ValueError):
            WriteMix(random=-0.1)
        with pytest.raises(ValueError):
            ReadMix(scan=-1.0, random=2.0)

    def test_weights_must_not_all_be_zero(self):
        with pytest.raises(ValueError):
            WriteMix(random=0.0)
        with pytest.raises(ValueError):
            ReadMix(random=0.0)

    def test_as_tuple_order(self):
        assert WriteMix(0.1, 0.2, 0.3, 0.4).as_tuple() == (0.1, 0.2, 0.3, 0.4)
        assert ReadMix(0.1, 0.2, 0.3, 0.4).as_tuple() == (0.1, 0.2, 0.3, 0.4)


class TestSpecValidation:
    def test_valid_spec(self):
        spec = make_spec()
        assert spec.n_reads == 500
        assert spec.n_writes == 500

    def test_family_checked(self):
        with pytest.raises(ValueError, match="family"):
            make_spec(family="other")

    def test_hot_fits_in_working_set(self):
        with pytest.raises(ValueError, match="hot_mib"):
            make_spec(hot_mib=128, working_set_mib=64)

    def test_read_fraction_bounds(self):
        with pytest.raises(ValueError):
            make_spec(read_fraction=1.5)
        assert make_spec(read_fraction=0.0).n_reads == 0
        assert make_spec(read_fraction=1.0).n_writes == 0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("total_ops", 0),
            ("mean_read_kib", 0),
            ("mean_write_kib", -1),
            ("working_set_mib", 0),
            ("zipf_alpha", -0.5),
            ("hot_targets_max", 0),
            ("overwrite_cluster", 0),
            ("cluster_span_kib", 0),
            ("misorder_group", 1),
            ("phases", 0),
            ("write_phase_decay", 0.0),
            ("write_phase_decay", 1.5),
            ("replay_window", 0),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            make_spec(**{field: value})

    def test_rounding_of_counts(self):
        spec = make_spec(total_ops=3, read_fraction=0.5)
        assert spec.n_reads + spec.n_writes == 3
