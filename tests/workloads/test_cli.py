"""Workload-synthesis CLI tests."""

import pytest

from repro.workloads.__main__ import main


class TestWorkloadsCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "w91" in out and "cloudphysics" in out
        assert "defrag-hurts" in out

    def test_generate_with_stats(self, capsys):
        assert main(["ts_0", "--scale", "0.05", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "ts_0:" in out
        assert "predicted" in out

    def test_export_csv(self, tmp_path, capsys):
        out_file = tmp_path / "trace.csv"
        assert main(["rsrch_0", "--scale", "0.05", "--out", str(out_file)]) == 0
        content = out_file.read_text().splitlines()
        assert content[0] == "timestamp,op,lba,length"
        assert len(content) > 100

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["not-a-workload"])
