"""Table I registry tests."""

import pytest

from repro.workloads import synthesize_workload
from repro.workloads.table1 import (
    CLOUDPHYSICS_WORKLOADS,
    FIG2_MSR,
    FIG3_WORKLOADS,
    FIG4_WORKLOADS,
    FIG5_WORKLOADS,
    FIG7_WORKLOADS,
    FIG10_WORKLOADS,
    MSR_WORKLOADS,
    TABLE1,
    get_spec,
)


class TestRegistryCompleteness:
    def test_21_workloads(self):
        assert len(TABLE1) == 21

    def test_family_split(self):
        assert len(MSR_WORKLOADS) == 9
        assert len(CLOUDPHYSICS_WORKLOADS) == 12

    def test_paper_msr_names_present(self):
        for name in ("usr_0", "src2_2", "hm_1", "web_0", "usr_1",
                     "wdev_0", "mds_0", "rsrch_0", "ts_0"):
            assert name in MSR_WORKLOADS

    def test_figure_subsets_are_registered(self):
        for subset in (FIG2_MSR, FIG3_WORKLOADS, FIG4_WORKLOADS,
                       FIG5_WORKLOADS, FIG7_WORKLOADS, FIG10_WORKLOADS):
            for name in subset:
                assert name in TABLE1

    def test_spec_names_match_keys(self):
        for name, entry in TABLE1.items():
            assert entry.spec.name == name


class TestPaperRows:
    def test_read_fraction_derivation(self):
        row = TABLE1["w91"].paper
        expected = 3147384 / (3147384 + 1169222)
        assert abs(row.read_fraction - expected) < 1e-9

    def test_spec_read_fraction_matches_paper(self):
        for name, entry in TABLE1.items():
            assert abs(entry.spec.read_fraction - entry.paper.read_fraction) < 0.002

    def test_spec_mean_write_matches_paper(self):
        for name, entry in TABLE1.items():
            assert entry.spec.mean_write_kib == entry.paper.mean_write_kb

    def test_expectations_cache_exceptions(self):
        # Paper §V: caching lowest everywhere except usr_1 and src2_2.
        not_best = {n for n, e in TABLE1.items() if not e.expect.cache_is_best}
        assert not_best == {"usr_1", "src2_2"}

    def test_expectations_defrag_hurts(self):
        hurts = {n for n, e in TABLE1.items() if e.expect.defrag_hurts}
        assert hurts == {"src2_2", "w93", "w20"}

    def test_expectations_prefetch_groups(self):
        large = {n for n, e in TABLE1.items() if e.expect.prefetch_gain_large is True}
        marginal = {n for n, e in TABLE1.items() if e.expect.prefetch_gain_large is False}
        assert large == {"w84", "w95", "w91"}
        assert marginal == {"usr_1", "hm_1", "w55", "w33"}


class TestLookup:
    def test_get_spec(self):
        assert get_spec("w91").name == "w91"

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_spec("nope")

    def test_synthesize_by_name(self):
        trace = synthesize_workload("ts_0", seed=1, scale=0.05)
        assert trace.name == "ts_0"
        assert len(trace) > 0

    def test_synthesize_unknown(self):
        with pytest.raises(KeyError):
            synthesize_workload("nope")
