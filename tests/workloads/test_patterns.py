"""Access-pattern primitive tests."""

import random

import pytest

from repro.workloads.patterns import (
    BLOCK_SECTORS,
    ClusteredOverwritePattern,
    MisorderedPattern,
    RandomAccessPattern,
    ReplayReadPattern,
    SequentialPattern,
    WrittenExtentLog,
    ZipfRereadPattern,
    sample_size,
)


def rng():
    return random.Random(7)


class TestSampleSize:
    def test_block_aligned(self):
        for _ in range(50):
            assert sample_size(rng(), 32.0) % BLOCK_SECTORS == 0

    def test_bounds(self):
        r = rng()
        sizes = [sample_size(r, 32.0) for _ in range(500)]
        assert min(sizes) >= BLOCK_SECTORS
        assert max(sizes) <= 2048  # 1 MiB cap

    def test_mean_roughly_respected(self):
        r = rng()
        sizes = [sample_size(r, 64.0) for _ in range(3000)]
        mean_kib = sum(sizes) / len(sizes) / 2
        assert 40 < mean_kib < 90

    def test_bulk_tail(self):
        r = rng()
        sizes = [sample_size(r, 16.0, cap_kib=4096.0, bulk_p=0.5) for _ in range(300)]
        assert max(sizes) > 2048  # bulk reads exceed the 1 MiB write cap


class TestRandomAccessPattern:
    def test_stays_in_region(self):
        pattern = RandomAccessPattern(rng(), 1000, 5000, 16.0)
        for _ in range(300):
            lba, length = pattern.emit()
            assert 1000 <= lba and lba + length <= 6000 + 2048

    def test_invalid_region(self):
        with pytest.raises(ValueError):
            RandomAccessPattern(rng(), 0, 0, 16.0)


class TestSequentialPattern:
    def test_ascending_and_wrapping(self):
        pattern = SequentialPattern(rng(), 0, 100, 8.0)  # 16-sector reads
        spans = [pattern.emit() for _ in range(7)]
        assert [s[0] for s in spans[:6]] == [0, 16, 32, 48, 64, 80]
        assert spans[6][0] == 0  # wrapped
        assert pattern.wraps == 1

    def test_fixed_size(self):
        pattern = SequentialPattern(rng(), 0, 10_000, 8.0)
        assert len({s[1] for s in (pattern.emit() for _ in range(20))}) == 1


class TestMisorderedPattern:
    def test_groups_locally_reversed(self):
        pattern = MisorderedPattern(rng(), 0, 10_000, 8.0, group=4)
        spans = [pattern.emit() for _ in range(8)]
        lbas = [s[0] for s in spans]
        # First chunk descending, second chunk descending, chunks ascending.
        assert lbas[0] > lbas[1] > lbas[2] > lbas[3]
        assert lbas[4] > lbas[5] > lbas[6] > lbas[7]
        assert lbas[4] > lbas[0]

    def test_union_is_sequential(self):
        pattern = MisorderedPattern(rng(), 0, 10_000, 8.0, group=4)
        spans = sorted(pattern.emit() for _ in range(8))
        cursor = 0
        for lba, length in spans:
            assert lba == cursor
            cursor += length

    def test_group_validation(self):
        with pytest.raises(ValueError):
            MisorderedPattern(rng(), 0, 100, 8.0, group=1)


class TestClusteredOverwritePattern:
    def test_cluster_locality(self):
        pattern = ClusteredOverwritePattern(
            rng(), 0, 1_000_000, 8.0, cluster=8, span_sectors=1024
        )
        spans = [pattern.emit() for _ in range(8)]
        lbas = [s[0] for s in spans]
        assert max(lbas) - min(lbas) <= 1024

    def test_new_anchor_per_cluster(self):
        pattern = ClusteredOverwritePattern(
            rng(), 0, 10_000_000, 8.0, cluster=2, span_sectors=64
        )
        first = [pattern.emit() for _ in range(2)]
        second = [pattern.emit() for _ in range(2)]
        assert abs(first[0][0] - second[0][0]) > 64  # overwhelmingly likely

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredOverwritePattern(rng(), 0, 100, 8.0, cluster=0)
        with pytest.raises(ValueError):
            ClusteredOverwritePattern(rng(), 0, 100, 8.0, span_sectors=0)


class TestWrittenExtentLog:
    def test_recent_bounded(self):
        log = WrittenExtentLog(recent_max=2, hot_targets_max=10)
        for i in range(5):
            log.note_write(i * 8, 8, in_hot=False)
        assert len(log.recent) == 2

    def test_hot_targets_bounded_and_stable(self):
        log = WrittenExtentLog(hot_targets_max=3)
        for i in range(10):
            log.note_write(i * 8, 8, in_hot=True)
        assert log.hot_targets == [(0, 8), (8, 8), (16, 8)]

    def test_cold_writes_not_targets(self):
        log = WrittenExtentLog()
        log.note_write(0, 8, in_hot=False)
        assert log.hot_targets == []

    def test_validation(self):
        with pytest.raises(ValueError):
            WrittenExtentLog(recent_max=0)


class TestZipfRereadPattern:
    def test_none_before_any_writes(self):
        pattern = ZipfRereadPattern(rng(), WrittenExtentLog(), alpha=1.0)
        assert pattern.emit() is None

    def test_skewed_selection(self):
        log = WrittenExtentLog()
        for i in range(100):
            log.note_write(i * 8, 8, in_hot=True)
        pattern = ZipfRereadPattern(rng(), log, alpha=1.5)
        picks = [pattern.emit() for _ in range(2000)]
        top = sum(1 for p in picks if p == (0, 8))
        bottom = sum(1 for p in picks if p == (99 * 8, 8))
        assert top > 5 * max(1, bottom)


class TestReplayReadPattern:
    def test_replays_in_write_order(self):
        log = WrittenExtentLog()
        writes = [(100, 8), (0, 8), (50, 8)]
        for lba, length in writes:
            log.note_write(lba, length, in_hot=False)
        pattern = ReplayReadPattern(log, window=3)
        assert [pattern.emit() for _ in range(3)] == writes

    def test_none_when_empty(self):
        assert ReplayReadPattern(WrittenExtentLog()).emit() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayReadPattern(WrittenExtentLog(), window=0)
