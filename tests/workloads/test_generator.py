"""Workload generator tests."""

import pytest

from repro.trace.stats import compute_stats
from repro.workloads.generator import WorkloadGenerator, generate_workload
from repro.workloads.spec import ReadMix, WorkloadSpec, WriteMix


def make_spec(**overrides):
    defaults = dict(
        name="gen-test",
        family="msr",
        total_ops=2000,
        read_fraction=0.5,
        mean_read_kib=16.0,
        mean_write_kib=16.0,
        working_set_mib=64,
        hot_mib=8,
        write_mix=WriteMix(random=0.5, hot_overwrite=0.3, sequential=0.1, misordered=0.1),
        read_mix=ReadMix(scan=0.3, random=0.3, hot=0.2, replay=0.2),
        phases=4,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        spec = make_spec()
        a = generate_workload(spec, seed=1)
        b = generate_workload(spec, seed=1)
        assert list(a.requests) == list(b.requests)

    def test_different_seed_different_trace(self):
        spec = make_spec()
        a = generate_workload(spec, seed=1)
        b = generate_workload(spec, seed=2)
        assert list(a.requests) != list(b.requests)


class TestShape:
    def test_op_counts_match_spec(self):
        trace = generate_workload(make_spec(), seed=3)
        assert len(trace) == 2000
        stats = compute_stats(trace)
        assert stats.read_count == 1000
        assert stats.write_count == 1000

    def test_scale(self):
        trace = generate_workload(make_spec(), seed=3, scale=0.5)
        assert len(trace) == 1000

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            generate_workload(make_spec(), scale=0)

    def test_timestamps_monotone(self):
        trace = generate_workload(make_spec(), seed=3)
        timestamps = [r.timestamp for r in trace]
        assert timestamps == sorted(timestamps)

    def test_addresses_within_working_set(self):
        spec = make_spec()
        trace = generate_workload(spec, seed=3)
        limit = spec.working_set_mib * 2048 + 4096 * 2  # region + read cap slack
        assert all(r.end <= limit for r in trace)

    def test_trace_named_after_spec(self):
        assert generate_workload(make_spec(), seed=3).name == "gen-test"

    def test_mean_write_size_tracks_spec(self):
        spec = make_spec(total_ops=6000, mean_write_kib=32.0)
        stats = compute_stats(generate_workload(spec, seed=3))
        assert 20.0 < stats.mean_write_size_kib < 45.0


class TestPhaseStructure:
    def test_front_loading(self):
        even = make_spec(write_phase_decay=1.0)
        front = make_spec(write_phase_decay=0.3)
        def first_quarter_writes(spec):
            trace = generate_workload(spec, seed=3)
            quarter = len(trace) // 4
            return sum(1 for r in trace.requests[:quarter] if r.is_write)
        assert first_quarter_writes(front) > first_quarter_writes(even)

    def test_single_phase(self):
        trace = generate_workload(make_spec(phases=1), seed=3)
        assert len(trace) == 2000

    def test_interleaving_spreads_patterns(self):
        spec = make_spec(
            interleave_writes=True,
            write_mix=WriteMix(random=0.5, hot_overwrite=0.5),
        )
        trace = generate_workload(spec, seed=3)
        assert len(trace) == 2000


class TestGeneratorClass:
    def test_reusable(self):
        gen = WorkloadGenerator(make_spec())
        assert gen.spec.name == "gen-test"
        a = gen.generate(seed=1)
        b = gen.generate(seed=1)
        assert list(a.requests) == list(b.requests)

    def test_all_reads_spec(self):
        spec = make_spec(read_fraction=1.0)
        trace = generate_workload(spec, seed=3)
        # One synthetic write is kept so re-read patterns have a target.
        assert compute_stats(trace).write_count <= 1
