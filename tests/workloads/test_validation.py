"""Archetype-validation API tests."""

import pytest

from repro.workloads.table1 import Expectations
from repro.workloads.validation import (
    ValidationReport,
    check_expectations,
    validate_archetype,
)


def saf(ls=1.0, defrag=1.0, prefetch=1.0, cache=1.0):
    return {
        "LS": ls,
        "LS+defrag": defrag,
        "LS+prefetch": prefetch,
        "LS+cache": cache,
    }


class TestCheckExpectations:
    def test_all_pass(self):
        report = check_expectations(
            "x",
            saf(ls=2.0, defrag=1.5, prefetch=1.0, cache=0.5),
            Expectations(ls_amplifies=True, cache_is_best=True,
                         prefetch_gain_large=True),
        )
        assert report.passed
        assert report.failures() == []

    def test_amplification_mismatch_fails(self):
        report = check_expectations(
            "x", saf(ls=0.5, cache=0.3), Expectations(ls_amplifies=True)
        )
        assert not report.passed
        assert any(c.name == "ls_amplifies" for c in report.failures())

    def test_cache_not_best_check(self):
        report = check_expectations(
            "x",
            saf(ls=2.0, defrag=1.8, prefetch=1.2, cache=1.5),
            Expectations(ls_amplifies=True, cache_is_best=False),
        )
        assert report.passed

    def test_cache_not_best_fails_when_cache_wins(self):
        report = check_expectations(
            "x",
            saf(ls=2.0, defrag=1.8, prefetch=1.2, cache=0.4),
            Expectations(ls_amplifies=True, cache_is_best=False),
        )
        assert any(c.name == "cache_not_best" for c in report.failures())

    def test_defrag_hurt_check(self):
        expect = Expectations(ls_amplifies=True, defrag_hurts=True)
        hurting = check_expectations("x", saf(ls=1.5, defrag=1.8, cache=1.0), expect)
        assert hurting.passed
        helping = check_expectations("x", saf(ls=1.5, defrag=1.2, cache=1.0), expect)
        assert any(c.name == "defrag_hurts" for c in helping.failures())

    def test_prefetch_gain_bounds(self):
        large = Expectations(ls_amplifies=True, prefetch_gain_large=True)
        marginal = Expectations(ls_amplifies=True, prefetch_gain_large=False)
        big_gain = saf(ls=3.0, prefetch=1.0, cache=0.9)
        small_gain = saf(ls=3.0, prefetch=2.8, cache=0.9)
        assert check_expectations("x", big_gain, large).passed
        assert not check_expectations("x", small_gain, large).passed
        assert check_expectations("x", small_gain, marginal).passed
        assert not check_expectations("x", big_gain, marginal).passed

    def test_technique_never_hurts_checks(self):
        report = check_expectations(
            "x",
            saf(ls=1.0, prefetch=1.5, cache=0.5),
            Expectations(ls_amplifies=False),
        )
        assert any(
            c.name == "LS+prefetch_never_hurts" for c in report.failures()
        )


class TestValidateArchetype:
    def test_w91_validates(self):
        report = validate_archetype("w91", seed=42, scale=0.5)
        assert isinstance(report, ValidationReport)
        assert report.workload == "w91"
        assert set(report.saf) == {"LS", "LS+defrag", "LS+prefetch", "LS+cache"}
        # At half scale the headline shapes still hold for w91.
        names = {c.name for c in report.checks}
        assert "ls_amplifies" in names and "cache_is_best" in names

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            validate_archetype("nope")

    def test_supplied_trace_used(self):
        from repro.workloads import synthesize_workload

        trace = synthesize_workload("rsrch_0", seed=1, scale=0.1)
        report = validate_archetype("rsrch_0", trace=trace)
        assert report.saf["LS"] < 1.0
