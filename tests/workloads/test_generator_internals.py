"""Unit tests for generator helper functions."""

from repro.workloads.generator import _interleave_schedule, _split_counts


class TestSplitCounts:
    def test_proportional(self):
        assert _split_counts(100, (1.0, 1.0)) == [50, 50]

    def test_remainder_to_first(self):
        counts = _split_counts(10, (1.0, 1.0, 1.0))
        assert sum(counts) == 10
        assert counts[0] >= counts[1] == counts[2]

    def test_zero_weight_bucket(self):
        counts = _split_counts(10, (1.0, 0.0))
        assert counts == [10, 0]

    def test_total_preserved_always(self):
        for total in (0, 1, 7, 99):
            for weights in ((0.3, 0.7), (1, 2, 3), (0.1, 0.0, 0.9)):
                assert sum(_split_counts(total, weights)) == total


class TestInterleaveSchedule:
    def test_preserves_counts(self):
        schedule = _interleave_schedule([("a", 30), ("b", 10)])
        assert schedule.count("a") == 30
        assert schedule.count("b") == 10

    def test_spreads_minority_evenly(self):
        schedule = _interleave_schedule([("a", 30), ("b", 10)])
        positions = [i for i, tag in enumerate(schedule) if tag == "b"]
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert max(gaps) <= 6  # roughly every 4th slot

    def test_single_group(self):
        assert _interleave_schedule([("x", 5)]) == ["x"] * 5

    def test_deterministic(self):
        groups = [("a", 13), ("b", 7), ("c", 3)]
        assert _interleave_schedule(groups) == _interleave_schedule(groups)

    def test_empty(self):
        assert _interleave_schedule([]) == []
