"""Additional DiskGeometry derived-quantity tests."""

from repro.disk.geometry import DiskGeometry
from repro.util.units import gib_to_sectors


class TestDerivedQuantities:
    def test_default_is_8tb_class(self):
        geo = DiskGeometry()
        assert geo.capacity_sectors == gib_to_sectors(8 * 1024)
        assert geo.rpm == 7200

    def test_tracks(self):
        geo = DiskGeometry(capacity_sectors=1000, track_sectors=100)
        assert geo.tracks == 10

    def test_tracks_at_least_one(self):
        geo = DiskGeometry(capacity_sectors=10, track_sectors=100)
        assert geo.tracks == 1

    def test_transfer_scales_linearly(self):
        geo = DiskGeometry()
        assert abs(geo.transfer_ms(2000) - 2 * geo.transfer_ms(1000)) < 1e-9

    def test_transfer_zero(self):
        assert DiskGeometry().transfer_ms(0) == 0.0

    def test_revolution_scales_with_rpm(self):
        assert DiskGeometry(rpm=15000).revolution_ms < DiskGeometry(rpm=5400).revolution_ms

    def test_frozen(self):
        import pytest

        geo = DiskGeometry()
        with pytest.raises(AttributeError):
            geo.rpm = 5400
