"""Seek-time model tests (paper §III cost structure)."""

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.seek_time import SeekTimeModel


@pytest.fixture
def model():
    return SeekTimeModel(geometry=DiskGeometry())


class TestSeekTimeShape:
    def test_zero_distance_free(self, model):
        assert model.seek_ms(0) == 0.0

    def test_short_forward_costs_transfer_time(self, model):
        sectors = 100  # well inside one track
        assert abs(model.seek_ms(sectors) - model.geometry.transfer_ms(sectors)) < 1e-12

    def test_short_backward_costs_near_full_rotation(self, model):
        cost = model.seek_ms(-100)
        assert cost > 0.8 * model.geometry.revolution_ms

    def test_long_seek_includes_half_rotation(self, model):
        distance = model.geometry.track_sectors * 1000
        assert model.seek_ms(distance) >= model.geometry.revolution_ms / 2

    def test_long_seek_monotone_in_distance(self, model):
        d1 = model.geometry.track_sectors * 10
        d2 = model.geometry.track_sectors * 100000
        assert model.seek_ms(d2) > model.seek_ms(d1)

    def test_full_stroke_near_max(self, model):
        cost = model.seek_ms(model.geometry.capacity_sectors)
        expected = model.max_seek_ms + model.geometry.revolution_ms / 2
        assert abs(cost - expected) < 0.5

    def test_backward_long_same_as_forward_long(self, model):
        distance = model.geometry.track_sectors * 500
        assert model.seek_ms(distance) == model.seek_ms(-distance)

    def test_missed_rotation_worse_than_short_skip(self, model):
        # The asymmetry motivating look-behind prefetching.
        assert model.seek_ms(-8) > 10 * model.seek_ms(8)


class TestAggregates:
    def test_total_ms(self, model):
        distances = [0, 100, -100]
        assert abs(
            model.total_ms(distances)
            - sum(model.seek_ms(d) for d in distances)
        ) < 1e-12

    def test_service_ms(self, model):
        assert model.service_ms(0, 1000) == model.geometry.transfer_ms(1000)
        with pytest.raises(ValueError):
            model.service_ms(0, -1)


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SeekTimeModel(min_seek_ms=0)
        with pytest.raises(ValueError):
            SeekTimeModel(min_seek_ms=5, max_seek_ms=2)
        with pytest.raises(ValueError):
            SeekTimeModel(short_seek_tracks=-1)


class TestGeometry:
    def test_revolution_7200rpm(self):
        assert abs(DiskGeometry(rpm=7200).revolution_ms - 8.333) < 0.01

    def test_transfer_ms(self):
        geo = DiskGeometry(transfer_mib_s=100.0)
        # 2048 sectors = 1 MiB at 100 MiB/s = 10 ms
        assert abs(geo.transfer_ms(2048) - 10.0) < 1e-9

    def test_tracks_spanned(self):
        geo = DiskGeometry(track_sectors=100)
        assert geo.tracks_spanned(250) == 2
        assert geo.tracks_spanned(-250) == 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            DiskGeometry(capacity_sectors=0)
        with pytest.raises(ValueError):
            DiskGeometry(rpm=0)
        with pytest.raises(ValueError):
            DiskGeometry(transfer_mib_s=0)
        with pytest.raises(ValueError):
            DiskGeometry(track_sectors=-5)
