"""SMR zone model tests (paper §II / Fig. 1 semantics)."""

import pytest

from repro.disk.zones import SequentialZoneError, ZonedAddressSpace


@pytest.fixture
def zas():
    return ZonedAddressSpace(zone_sectors=100, n_zones=4)


class TestLayout:
    def test_capacity(self, zas):
        assert zas.capacity_sectors == 400

    def test_zone_for(self, zas):
        assert zas.zone_for(0).zone_id == 0
        assert zas.zone_for(99).zone_id == 0
        assert zas.zone_for(100).zone_id == 1
        assert zas.zone_for(399).zone_id == 3

    def test_zone_for_out_of_range(self, zas):
        with pytest.raises(ValueError):
            zas.zone_for(400)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ZonedAddressSpace(zone_sectors=0)
        with pytest.raises(ValueError):
            ZonedAddressSpace(n_zones=0)
        with pytest.raises(ValueError):
            ZonedAddressSpace(n_zones=2, conventional_zones=3)


class TestSequentialWriteConstraint:
    def test_write_at_pointer_ok(self, zas):
        zas.write(0, 10)
        assert zas.zones[0].write_pointer == 10

    def test_write_not_at_pointer_rejected(self, zas):
        with pytest.raises(SequentialZoneError, match="write pointer"):
            zas.write(5, 10)

    def test_rewrite_requires_reset(self, zas):
        zas.write(0, 100)
        assert zas.zones[0].is_full
        with pytest.raises(SequentialZoneError):
            zas.write(0, 1)
        zas.reset(0)
        assert zas.zones[0].is_empty
        zas.write(0, 1)  # now ok

    def test_write_crossing_zone_end_rejected(self, zas):
        with pytest.raises(SequentialZoneError, match="crosses zone"):
            zas.write(0, 101)

    def test_invalid_length(self, zas):
        with pytest.raises(ValueError):
            zas.write(0, 0)


class TestConventionalZones:
    def test_random_writes_allowed(self):
        zas = ZonedAddressSpace(zone_sectors=100, n_zones=2, conventional_zones=1)
        zas.write(50, 10)  # anywhere in zone 0
        zas.write(0, 10)
        assert zas.zones[0].write_pointer == 60  # high-water mark

    def test_sequential_zone_still_enforced(self):
        zas = ZonedAddressSpace(zone_sectors=100, n_zones=2, conventional_zones=1)
        with pytest.raises(SequentialZoneError):
            zas.write(150, 10)


class TestAppendAllocator:
    def test_append_within_zone(self, zas):
        pieces = zas.append(30)
        assert pieces == [(0, 30)]

    def test_append_across_zones(self, zas):
        zas.append(90)
        pieces = zas.append(30)
        assert pieces == [(90, 10), (100, 20)]

    def test_append_skips_conventional(self):
        zas = ZonedAddressSpace(zone_sectors=100, n_zones=3, conventional_zones=1)
        assert zas.append(10) == [(100, 10)]

    def test_append_device_full(self, zas):
        zas.append(400)
        with pytest.raises(SequentialZoneError, match="device full"):
            zas.append(1)

    def test_append_invalid(self, zas):
        with pytest.raises(ValueError):
            zas.append(0)


class TestZoneProperties:
    def test_counters(self, zas):
        zone = zas.zones[0]
        assert zone.remaining_sectors == 100
        zas.write(0, 40)
        assert zone.written_sectors == 40
        assert zone.remaining_sectors == 60
        assert not zone.is_full and not zone.is_empty
