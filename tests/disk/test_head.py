"""DiskHead seek-definition tests (paper §II, verbatim)."""

import pytest

from repro.disk.head import DiskHead


class TestSeekDefinition:
    def test_first_access_is_not_a_seek(self):
        head = DiskHead()
        event = head.access(1000, 8)
        assert not event.seek and event.distance == 0

    def test_contiguous_access_no_seek(self):
        head = DiskHead()
        head.access(100, 8)
        assert not head.access(108, 4).seek

    def test_forward_jump_is_seek(self):
        head = DiskHead()
        head.access(100, 8)
        event = head.access(200, 1)
        assert event.seek and event.distance == 92

    def test_backward_jump_is_seek(self):
        head = DiskHead()
        head.access(100, 8)
        event = head.access(50, 1)
        assert event.seek and event.distance == -58

    def test_one_sector_back_is_missed_rotation_seek(self):
        # Reading physical N after N+1 is the §IV-B missed-rotation case.
        head = DiskHead()
        head.access(100, 1)
        event = head.access(100, 1)
        assert event.seek and event.distance == -1

    def test_position_tracks_end(self):
        head = DiskHead()
        head.access(10, 5)
        assert head.position == 15


class TestHelpers:
    def test_peek_distance(self):
        head = DiskHead()
        assert head.peek_distance(100) == 0  # no prior access
        head.access(0, 10)
        assert head.peek_distance(10) == 0
        assert head.peek_distance(20) == 10

    def test_would_seek(self):
        head = DiskHead()
        assert not head.would_seek(5)
        head.access(0, 10)
        assert not head.would_seek(10)
        assert head.would_seek(11)

    def test_reset(self):
        head = DiskHead()
        head.access(0, 10)
        head.reset()
        assert head.position is None
        assert not head.access(500, 1).seek

    def test_invalid_access(self):
        head = DiskHead()
        with pytest.raises(ValueError):
            head.access(0, 0)
        with pytest.raises(ValueError):
            head.access(-1, 1)
