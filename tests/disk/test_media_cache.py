"""Drive-managed media-cache STL tests (paper §II baseline)."""

import random

import pytest

from repro.disk.media_cache import MediaCacheSTL
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.util.units import mib_to_sectors


def small_stl(cache_mib=0.125):
    # 0.125 MiB = 256-sector media cache: cleaning triggers quickly.
    return MediaCacheSTL(data_sectors=10_000, cache_mib=cache_mib)


class TestWrites:
    def test_write_appends_to_cache(self):
        stl = small_stl()
        stl.submit(IORequest.write(100, 8))
        assert stl.cache_used_sectors == 8
        assert stl.stats.host_written_sectors == 8

    def test_back_to_back_writes_no_seek(self):
        stl = small_stl()
        stl.submit(IORequest.write(5000, 8))
        stl.submit(IORequest.write(100, 8))
        assert stl.stats.write_seeks == 0  # both append to the cache log

    def test_cleaning_triggers_when_full(self):
        stl = small_stl()
        for i in range(40):  # 40 * 8 = 320 sectors > 256-sector cache
            stl.submit(IORequest.write(i * 16, 8))
        assert stl.stats.cleanings >= 1
        assert stl.stats.write_amplification > 1.0

    def test_oversized_write_rejected(self):
        stl = small_stl()
        with pytest.raises(ValueError, match="exceeds media cache"):
            stl.submit(IORequest.write(0, 1000))

    def test_out_of_range_request_rejected(self):
        stl = small_stl()
        with pytest.raises(ValueError, match="outside data region"):
            stl.submit(IORequest.write(9_999, 8))


class TestReads:
    def test_read_after_write_backs_up_to_cached_copy(self):
        stl = small_stl()
        stl.submit(IORequest.write(100, 8))
        stl.submit(IORequest.read(100, 8))
        # The head sits just past the freshly logged copy; re-reading it
        # requires backing up 8 sectors (a missed rotation).
        assert stl.stats.read_seeks == 1
        assert stl.stats.seek_distances == [-8]

    def test_read_of_clean_data_in_place(self):
        stl = small_stl()
        stl.submit(IORequest.read(100, 8))
        stl.submit(IORequest.read(108, 8))
        assert stl.stats.read_seeks == 0  # sequential in data region

    def test_fragmented_read_spans_cache_and_data(self):
        stl = small_stl()
        stl.submit(IORequest.write(104, 8))     # middle of a range, dirty
        stl.submit(IORequest.read(96, 24))      # [clean, dirty, clean]
        assert stl.stats.read_seeks >= 2


class TestCleaning:
    def test_cleaning_restores_spatial_order(self):
        stl = small_stl()
        rng = random.Random(1)
        for _ in range(40):
            stl.submit(IORequest.write(rng.randrange(0, 1200) * 8, 8))
        assert stl.stats.cleanings >= 1
        # After cleaning, a read of cleaned data is served in place with at
        # most one seek.
        before = stl.stats.read_seeks
        stl.submit(IORequest.read(0, 64))
        assert stl.stats.read_seeks - before <= 1

    def test_waf_accounts_cleaned_sectors(self):
        stl = small_stl()
        for i in range(40):
            stl.submit(IORequest.write(i * 16, 8))
        stats = stl.stats
        assert stats.disk_written_sectors == (
            stats.host_written_sectors + stats.cleaned_sectors
        )

    def test_replay_returns_stats(self):
        stl = small_stl()
        trace = Trace([IORequest.write(0, 8), IORequest.read(0, 8)])
        stats = stl.replay(trace)
        assert stats is stl.stats
        assert stats.host_read_sectors == 8


class TestConstruction:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MediaCacheSTL(data_sectors=0)
        with pytest.raises(ValueError):
            MediaCacheSTL(data_sectors=100, cache_mib=0)

    def test_cache_sizing(self):
        stl = MediaCacheSTL(data_sectors=1000, cache_mib=2)
        assert stl.cache_sectors == mib_to_sectors(2)
