"""Angular rotational-position model tests."""

import pytest

from repro.disk.angular import AngularSeekModel
from repro.disk.geometry import DiskGeometry


@pytest.fixture
def model():
    return AngularSeekModel(geometry=DiskGeometry(track_sectors=1000))


class TestAngles:
    def test_angle_of(self, model):
        assert model.angle_of(0) == 0.0
        assert model.angle_of(250) == 0.25
        assert model.angle_of(1000) == 0.0   # next track, same angle
        with pytest.raises(ValueError):
            model.angle_of(-1)

    def test_head_travel_same_track(self, model):
        assert model.head_travel_ms(10, 20) == 0.0

    def test_head_travel_grows_with_tracks(self, model):
        near = model.head_travel_ms(0, 1000)
        far = model.head_travel_ms(0, 1000 * 10000)
        assert 0 < near < far <= model.max_seek_ms


class TestSeekCosts:
    def test_zero_distance_free(self, model):
        assert model.seek_ms(123, 123) == 0.0

    def test_short_forward_skip_is_rotational_fraction(self, model):
        # Skipping 100 of 1000 sectors on the same track = 10% of a rev.
        cost = model.seek_ms(0, 100)
        assert abs(cost - 0.1 * model.geometry.revolution_ms) < 1e-9

    def test_missed_rotation_costs_near_full_rev(self, model):
        cost = model.missed_rotation_ms()
        assert cost > 0.99 * model.geometry.revolution_ms

    def test_backward_on_same_track_wraps(self, model):
        # Going back 100 sectors means waiting 90% of a revolution.
        cost = model.seek_ms(100, 0)
        assert abs(cost - 0.9 * model.geometry.revolution_ms) < 1e-9

    def test_cross_track_includes_travel_and_wait(self, model):
        target = 1000 * 500  # 500 tracks away, same angle
        cost = model.seek_ms(0, target)
        travel = model.head_travel_ms(0, target)
        assert cost >= travel
        assert cost <= travel + model.geometry.revolution_ms

    def test_deterministic(self, model):
        assert model.seek_ms(7, 123456) == model.seek_ms(7, 123456)

    def test_total_ms(self, model):
        hops = [(0, 100), (100, 0)]
        assert abs(
            model.total_ms(hops)
            - (model.seek_ms(0, 100) + model.seek_ms(100, 0))
        ) < 1e-12


class TestAgainstDistanceModel:
    def test_missed_rotation_matches_statistical_model_scale(self, model):
        # The distance-bucketed SeekTimeModel charges a near-full rev for a
        # short backward hop; the angular model derives it exactly.
        from repro.disk.seek_time import SeekTimeModel

        statistical = SeekTimeModel(geometry=model.geometry)
        angular = model.seek_ms(8, 0)
        bucketed = statistical.seek_ms(-8)
        assert abs(angular - bucketed) < 0.25 * model.geometry.revolution_ms


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AngularSeekModel(min_seek_ms=0)
        with pytest.raises(ValueError):
            AngularSeekModel(min_seek_ms=5, max_seek_ms=1)
