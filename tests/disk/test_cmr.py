"""Conventional-disk service-time estimator tests."""

from repro.disk.cmr import ConventionalDisk
from repro.trace.record import IORequest
from repro.trace.trace import Trace


class TestConventionalDisk:
    def test_sequential_replay_no_seek_time(self, sequential_write_trace):
        disk = ConventionalDisk()
        stats = disk.replay(sequential_write_trace)
        assert stats.seeks == 0
        assert stats.seek_ms == 0.0
        assert stats.transfer_ms > 0.0

    def test_random_replay_accumulates_seek_time(self):
        disk = ConventionalDisk()
        trace = Trace(
            [IORequest.read(i * 1_000_000, 8) for i in range(10)]
        )
        stats = disk.replay(trace)
        assert stats.seeks == 9  # first access free
        assert stats.seek_ms > 0.0

    def test_submit_returns_service_time(self):
        disk = ConventionalDisk()
        first = disk.submit(IORequest.read(0, 8))
        second = disk.submit(IORequest.read(10_000_000, 8))
        assert first < second  # second pays a long seek

    def test_total_ms(self):
        disk = ConventionalDisk()
        disk.submit(IORequest.read(0, 8))
        assert disk.stats.total_ms == disk.stats.seek_ms + disk.stats.transfer_ms
