"""End-to-end flows: public API, trace persistence, substrate ablation."""

from repro import (
    LS,
    LS_CACHE,
    NOLS,
    build_translator,
    replay,
    seek_amplification,
    synthesize_workload,
)
from repro.disk.media_cache import MediaCacheSTL
from repro.trace.csvio import read_csv_trace, write_csv_trace


class TestPublicApiFlow:
    def test_quickstart_flow(self):
        trace = synthesize_workload("w91", seed=7, scale=0.05)
        baseline = replay(trace, build_translator(trace, NOLS))
        ls = replay(trace, build_translator(trace, LS))
        saf = seek_amplification(ls.stats, baseline.stats)
        assert saf.total > 0
        assert saf.write < 0.2  # log-structuring kills write seeks

    def test_technique_comparison_flow(self):
        trace = synthesize_workload("w91", seed=7, scale=0.1)
        baseline = replay(trace, build_translator(trace, NOLS))
        ls = replay(trace, build_translator(trace, LS))
        cached = replay(trace, build_translator(trace, LS_CACHE))
        ls_saf = seek_amplification(ls.stats, baseline.stats)
        cache_saf = seek_amplification(cached.stats, baseline.stats)
        assert cache_saf.total < ls_saf.total


class TestTracePersistence:
    def test_synthetic_trace_survives_round_trip(self, tmp_path):
        trace = synthesize_workload("ts_0", seed=3, scale=0.02)
        path = tmp_path / "ts_0.csv"
        write_csv_trace(trace, path)
        loaded = read_csv_trace(path)
        base_a = replay(trace, build_translator(trace, NOLS)).stats
        base_b = replay(loaded, build_translator(loaded, NOLS)).stats
        assert base_a.total_seeks == base_b.total_seeks


class TestMediaCacheVsLogStructured:
    def test_paper_section2_tradeoff(self):
        """Media-cache STL: low read-seek amplification, WAF > 1.
        Log-structured STL: WAF 1.0 (no cleaning), read seeks amplified.
        This is the §II trade-off that motivates the paper."""
        trace = synthesize_workload("w91", seed=7, scale=0.1)
        baseline = replay(trace, build_translator(trace, NOLS))
        ls = replay(trace, build_translator(trace, LS))

        stl = MediaCacheSTL(data_sectors=trace.max_end, cache_mib=8)
        stl.replay(trace)

        # Cleaning makes the media-cache STL write more than the host did.
        assert stl.stats.write_amplification > 1.0
        # The log-structured translator never cleans.
        assert ls.stats.defrag_rewritten_sectors == 0
        # And amplifies read seeks where the media-cache design does not
        # (both measured against the same conventional baseline).
        ls_read_ratio = ls.stats.read_seeks / max(1, baseline.stats.read_seeks)
        mc_read_ratio = stl.stats.read_seeks / max(1, baseline.stats.read_seeks)
        assert ls_read_ratio > mc_read_ratio
