"""Crash-safety end to end: kill a real run mid-exhibit, then resume.

The acceptance bar: killing an ``all`` run mid-exhibit leaves only valid
JSON on disk, and re-running with ``--resume`` skips completed exhibits,
finishes the rest, and produces a ``run.json`` manifest with per-exhibit
status.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn(args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _assert_all_json_valid(out_dir: Path):
    dumps = list(out_dir.glob("*.json"))
    for path in dumps:
        with path.open() as handle:
            json.load(handle)  # raises on a truncated file
    return dumps


@pytest.mark.slow
class TestKillAndResume:
    def test_sigkill_mid_run_then_resume(self, tmp_path):
        out = tmp_path / "results"
        # Scale 0.1 keeps the full run around ten seconds — long enough
        # that a kill shortly after the first JSONs appear lands mid-run
        # with completed exhibits behind it.
        proc = _spawn(
            ["all", "--scale", "0.1", "--seed", "11", "--out", str(out), "--keep-going"]
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                # Count exhibit dumps only: run.json exists from the first
                # instant.  Once N exhibit dumps exist, at least N-1
                # exhibits are already checkpointed ok in the manifest.
                dumps = [p for p in out.glob("*.json") if p.name != "run.json"]
                if len(dumps) >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail("run finished before it could be killed")
                time.sleep(0.05)
            else:
                pytest.fail("no exhibit JSON appeared in time")
            proc.kill()  # SIGKILL: no cleanup handlers run
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # 1. Whatever hit the disk must be complete, parseable JSON.
        dumps = _assert_all_json_valid(out)
        assert dumps, "expected at least one completed exhibit dump"
        manifest = json.loads((out / "run.json").read_text())
        completed_before = {
            name
            for name, entry in manifest["exhibits"].items()
            if entry["status"] == "ok"
        }
        assert completed_before

        # 2. Resume with identical parameters: completed exhibits are
        # skipped, the rest run to completion.
        proc = _spawn(
            [
                "all", "--scale", "0.1", "--seed", "11",
                "--out", str(out), "--keep-going", "--resume",
            ]
        )
        output, _ = proc.communicate(timeout=600)
        assert proc.returncode == 0, output
        for name in completed_before:
            assert f"=== {name}: already complete, skipping (resume)" in output

        # 3. Final state: every exhibit ok in the manifest, all JSON valid.
        manifest = json.loads((out / "run.json").read_text())
        from repro.experiments.registry import EXHIBITS

        assert set(manifest["exhibits"]) == set(EXHIBITS)
        assert all(
            entry["status"] == "ok" for entry in manifest["exhibits"].values()
        )
        _assert_all_json_valid(out)
