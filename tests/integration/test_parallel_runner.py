"""Parallel runner: determinism, manifest semantics, resume under the pool.

The headline guarantee of ``jobs=N`` is that it is *unobservable* in the
results: exhibit JSON dumps are byte-identical to a serial run, and the
manifest carries the same statuses and fingerprints (only wall-clock
durations may differ).  The fake-registry tests use the ``fork`` start
method so monkeypatched exhibits survive into the workers; the real-
registry test uses the default hermetic ``spawn`` path end to end.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments import registry
from repro.experiments.runner import (
    MANIFEST_NAME,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RUNNING,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    run_exhibits,
)

QUIET = {"echo": lambda s: None}


def _manifest(out_dir) -> dict:
    return json.loads((Path(out_dir) / MANIFEST_NAME).read_text())


def _exhibit_bytes(out_dir) -> dict:
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(out_dir).glob("*.json"))
        if path.name != MANIFEST_NAME
    }


@pytest.fixture
def fake_exhibits(monkeypatch):
    """A registry of tiny exhibits that log each run to ``<name>.ran``.

    The log file survives process boundaries (unlike a closure list), so
    tests can count executions even when the exhibit ran in a pool worker.
    """

    def make(name, fail=False, sleep=0.0):
        def run(seed=42, scale=1.0, out_dir=None):
            if out_dir is not None:
                with open(Path(out_dir) / f"{name}.ran", "a") as handle:
                    handle.write(f"{os.getpid()}\n")
            if sleep:
                import time

                time.sleep(sleep)
            if fail:
                raise RuntimeError(f"{name} exploded")
            if out_dir is not None:
                from repro.experiments.common import save_json

                save_json(name, {"name": name, "seed": seed, "scale": scale}, out_dir)
            return {"name": name}

        return run

    fakes = {
        "alpha": make("alpha"),
        "beta": make("beta", fail=True),
        "gamma": make("gamma"),
        "sleepy": make("sleepy", sleep=5.0),
    }
    monkeypatch.setattr(registry, "EXHIBITS", fakes)
    return fakes


def _runs(out_dir, name) -> int:
    path = Path(out_dir) / f"{name}.ran"
    return len(path.read_text().splitlines()) if path.exists() else 0


class TestParallelSemantics:
    def test_all_ok_matches_serial_manifest(self, fake_exhibits, tmp_path):
        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        run_exhibits(["alpha", "gamma"], out_dir=str(serial), **QUIET)
        run_exhibits(
            ["alpha", "gamma"],
            out_dir=str(parallel),
            jobs=2,
            mp_start_method="fork",
            **QUIET,
        )
        serial_manifest, parallel_manifest = _manifest(serial), _manifest(parallel)
        assert list(parallel_manifest["exhibits"]) == list(serial_manifest["exhibits"])
        for name in ("alpha", "gamma"):
            serial_entry = serial_manifest["exhibits"][name]
            parallel_entry = parallel_manifest["exhibits"][name]
            assert parallel_entry["status"] == serial_entry["status"] == STATUS_OK
            assert parallel_entry["fingerprint"] == serial_entry["fingerprint"]
        # The dumps themselves (everything but wall-clock) are identical.
        serial_bytes = {
            k: v for k, v in _exhibit_bytes(serial).items() if k.endswith(".json")
        }
        parallel_bytes = {
            k: v for k, v in _exhibit_bytes(parallel).items() if k.endswith(".json")
        }
        assert parallel_bytes == serial_bytes

    def test_outcomes_keep_names_order(self, fake_exhibits, tmp_path):
        outcomes = run_exhibits(
            ["gamma", "alpha"],
            out_dir=str(tmp_path),
            jobs=2,
            mp_start_method="fork",
            **QUIET,
        )
        assert [o.name for o in outcomes] == ["gamma", "alpha"]
        assert all(o.status == STATUS_OK for o in outcomes)

    def test_failure_recorded_and_no_running_left(self, fake_exhibits, tmp_path):
        outcomes = run_exhibits(
            ["alpha", "beta", "gamma"],
            out_dir=str(tmp_path),
            jobs=2,
            mp_start_method="fork",
            **QUIET,
        )
        by_name = {o.name: o for o in outcomes}
        assert by_name["beta"].status == STATUS_FAILED
        assert "beta exploded" in by_name["beta"].error
        assert "RuntimeError" in by_name["beta"].error
        # Cancelled placeholders are cleaned up: whatever remains in the
        # manifest is finished, exactly like a serial run that stopped.
        for name, entry in _manifest(tmp_path)["exhibits"].items():
            assert entry["status"] != STATUS_RUNNING, name

    def test_keep_going_runs_everything(self, fake_exhibits, tmp_path):
        outcomes = run_exhibits(
            ["alpha", "beta", "gamma"],
            out_dir=str(tmp_path),
            jobs=2,
            mp_start_method="fork",
            keep_going=True,
            **QUIET,
        )
        assert [o.name for o in outcomes] == ["alpha", "beta", "gamma"]
        assert [o.status for o in outcomes] == [STATUS_OK, STATUS_FAILED, STATUS_OK]
        assert _runs(tmp_path, "alpha") == 1
        assert _runs(tmp_path, "gamma") == 1

    def test_timeout_fires_inside_worker(self, fake_exhibits, tmp_path):
        outcomes = run_exhibits(
            ["sleepy"],
            out_dir=str(tmp_path),
            jobs=2,
            mp_start_method="fork",
            timeout_s=0.2,
            keep_going=True,
            **QUIET,
        )
        assert outcomes[0].status == STATUS_TIMEOUT
        assert _manifest(tmp_path)["exhibits"]["sleepy"]["status"] == STATUS_TIMEOUT

    def test_jobs_must_be_positive(self, fake_exhibits):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_exhibits(["alpha"], jobs=0, **QUIET)


class TestResumeUnderPool:
    def test_resume_skips_completed_in_parallel(self, fake_exhibits, tmp_path):
        run_exhibits(["alpha"], out_dir=str(tmp_path), **QUIET)
        outcomes = run_exhibits(
            ["alpha", "gamma"],
            out_dir=str(tmp_path),
            resume=True,
            jobs=2,
            mp_start_method="fork",
            **QUIET,
        )
        assert [o.status for o in outcomes] == [STATUS_SKIPPED, STATUS_OK]
        assert _runs(tmp_path, "alpha") == 1  # not re-run in a worker
        assert _runs(tmp_path, "gamma") == 1

    def test_resume_after_simulated_crash(self, fake_exhibits, tmp_path):
        # A parallel run killed mid-flight leaves 'running' placeholders;
        # resume must re-run those and keep the completed work.
        run_exhibits(["alpha", "gamma"], out_dir=str(tmp_path), **QUIET)
        manifest_path = Path(tmp_path) / MANIFEST_NAME
        raw = json.loads(manifest_path.read_text())
        raw["exhibits"]["gamma"]["status"] = STATUS_RUNNING
        manifest_path.write_text(json.dumps(raw))
        outcomes = run_exhibits(
            ["alpha", "gamma"],
            out_dir=str(tmp_path),
            resume=True,
            jobs=2,
            mp_start_method="fork",
            **QUIET,
        )
        assert [o.status for o in outcomes] == [STATUS_SKIPPED, STATUS_OK]
        assert _runs(tmp_path, "alpha") == 1
        assert _runs(tmp_path, "gamma") == 2
        assert _manifest(tmp_path)["exhibits"]["gamma"]["status"] == STATUS_OK

    def test_parallel_resume_all_skipped_touches_nothing(
        self, fake_exhibits, tmp_path
    ):
        run_exhibits(["alpha", "gamma"], out_dir=str(tmp_path), **QUIET)
        before = _exhibit_bytes(tmp_path)
        outcomes = run_exhibits(
            ["alpha", "gamma"],
            out_dir=str(tmp_path),
            resume=True,
            jobs=4,
            mp_start_method="fork",
            **QUIET,
        )
        assert [o.status for o in outcomes] == [STATUS_SKIPPED, STATUS_SKIPPED]
        assert _exhibit_bytes(tmp_path) == before


class TestRealExhibitsByteIdentical:
    """End-to-end over the real registry with the default spawn pool."""

    def test_parallel_and_fast_dumps_match_serial(self, tmp_path):
        names = ["fig8", "fig11"]
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        outcomes = run_exhibits(names, scale=0.05, out_dir=str(serial), **QUIET)
        assert all(o.status == STATUS_OK for o in outcomes)
        outcomes = run_exhibits(
            names, scale=0.05, out_dir=str(parallel), jobs=2, fast=True, **QUIET
        )
        assert all(o.status == STATUS_OK for o in outcomes)

        assert _exhibit_bytes(parallel) == _exhibit_bytes(serial)
        serial_manifest, parallel_manifest = _manifest(serial), _manifest(parallel)
        assert list(parallel_manifest["exhibits"]) == list(serial_manifest["exhibits"])
        for name in names:
            assert (
                parallel_manifest["exhibits"][name]["fingerprint"]
                == serial_manifest["exhibits"][name]["fingerprint"]
            )
            assert parallel_manifest["exhibits"][name]["status"] == STATUS_OK
