"""Integration tests: the paper's qualitative results must hold on the
synthetic archetypes (DESIGN.md §4 "shapes").

These replay all 21 workloads under the five configurations once
(module-scoped fixture, ~1 minute) and assert every §V claim.
"""

import pytest

from repro.analysis.fragmentation import fraction_of_fragments_in_top_reads
from repro.analysis.misorder import misorder_rate
from repro.analysis.popularity import FragmentPopularityRecorder
from repro.core.config import LS, NOLS, PAPER_CONFIGS, build_translator
from repro.core.metrics import seek_amplification
from repro.core.recorders import FragmentationRecorder
from repro.core.simulator import Simulator, replay
from repro.workloads import (
    CLOUDPHYSICS_WORKLOADS,
    MSR_WORKLOADS,
    TABLE1,
    synthesize_workload,
)

SEED = 42


@pytest.fixture(scope="module")
def saf_matrix():
    """Total SAF per (workload, config), plus each trace, computed once."""
    matrix = {}
    traces = {}
    for name in TABLE1:
        trace = synthesize_workload(name, seed=SEED)
        traces[name] = trace
        baseline = replay(trace, build_translator(trace, NOLS)).stats
        matrix[name] = {
            config.name: seek_amplification(
                replay(trace, build_translator(trace, config)).stats, baseline
            ).total
            for config in PAPER_CONFIGS
        }
    return matrix, traces


class TestArchetypeValidation:
    def test_every_archetype_passes_its_expectations(self, saf_matrix):
        """The library's own validation API must agree: every Table-I
        archetype satisfies all its recorded paper expectations."""
        from repro.workloads.validation import check_expectations

        matrix, _ = saf_matrix
        failures = []
        for name, entry in TABLE1.items():
            report = check_expectations(name, matrix[name], entry.expect)
            for check in report.failures():
                failures.append(f"{name}.{check.name}: {check.detail}")
        assert not failures, "; ".join(failures)


class TestSeedRobustness:
    def test_shapes_hold_at_a_different_seed(self):
        """The reproduction must not be an artifact of one RNG seed: every
        archetype's expectations also hold at seed 7 (half scale keeps the
        runtime bounded)."""
        from repro.workloads.validation import validate_archetype

        failures = []
        for name in TABLE1:
            report = validate_archetype(name, seed=7, scale=0.5)
            for check in report.failures():
                failures.append(f"{name}.{check.name}: {check.detail}")
        assert not failures, "; ".join(failures)


class TestFig11MSR:
    def test_msr_saf_below_one_except_usr1_hm1(self, saf_matrix):
        matrix, _ = saf_matrix
        for name in MSR_WORKLOADS:
            expected_amplified = TABLE1[name].expect.ls_amplifies
            assert (matrix[name]["LS"] > 1.0) == expected_amplified, (
                f"{name}: LS SAF {matrix[name]['LS']:.2f} contradicts the "
                f"paper's Fig. 11a grouping"
            )

    def test_usr1_and_hm1_amplify(self, saf_matrix):
        matrix, _ = saf_matrix
        assert matrix["usr_1"]["LS"] > 1.0
        assert matrix["hm_1"]["LS"] > 1.0


class TestFig11CloudPhysics:
    def test_majority_amplify(self, saf_matrix):
        matrix, _ = saf_matrix
        amplified = sum(
            1 for name in CLOUDPHYSICS_WORKLOADS if matrix[name]["LS"] > 1.0
        )
        assert amplified > len(CLOUDPHYSICS_WORKLOADS) / 2

    def test_w91_is_worst(self, saf_matrix):
        matrix, _ = saf_matrix
        w91 = matrix["w91"]["LS"]
        assert w91 == max(matrix[name]["LS"] for name in CLOUDPHYSICS_WORKLOADS)
        assert w91 > 2.0  # "huge" amplification (paper: ~3.7)


class TestDefrag:
    def test_defrag_hurts_where_paper_says(self, saf_matrix):
        matrix, _ = saf_matrix
        for name in ("src2_2", "w93", "w20"):
            assert matrix[name]["LS+defrag"] > matrix[name]["LS"] * 1.02, (
                f"{name}: defrag should worsen SAF "
                f"({matrix[name]['LS+defrag']:.2f} vs {matrix[name]['LS']:.2f})"
            )

    def test_defrag_helps_rescan_heavy_workloads(self, saf_matrix):
        matrix, _ = saf_matrix
        for name in ("w91", "w64", "w95"):
            assert matrix[name]["LS+defrag"] < matrix[name]["LS"]

    def test_defrag_best_improvement_roughly_paper_scale(self, saf_matrix):
        # Paper headline: up to ~4x SAF improvement from defrag.
        matrix, _ = saf_matrix
        best = max(
            matrix[name]["LS"] / matrix[name]["LS+defrag"] for name in TABLE1
        )
        assert 1.5 <= best <= 6.0


class TestPrefetch:
    def test_prefetch_never_hurts(self, saf_matrix):
        matrix, _ = saf_matrix
        for name in TABLE1:
            assert matrix[name]["LS+prefetch"] <= matrix[name]["LS"] * 1.02

    def test_large_gain_workloads(self, saf_matrix):
        matrix, _ = saf_matrix
        for name in ("w84", "w95", "w91"):
            gain = matrix[name]["LS"] / matrix[name]["LS+prefetch"]
            assert gain >= 1.30, f"{name}: prefetch gain {gain:.2f} not large"

    def test_marginal_gain_workloads(self, saf_matrix):
        # 1.50 is the synthetic substitution's structural floor, not the
        # paper's "<1 %" — see EXPERIMENTS.md deviations #4.
        matrix, _ = saf_matrix
        for name in ("usr_1", "hm_1", "w55", "w33"):
            gain = matrix[name]["LS"] / matrix[name]["LS+prefetch"]
            assert gain <= 1.50, f"{name}: prefetch gain {gain:.2f} not marginal"

    def test_best_prefetch_gain_roughly_paper_scale(self, saf_matrix):
        # Paper headline: up to ~3.7x from prefetching.
        matrix, _ = saf_matrix
        best = max(
            matrix[name]["LS"] / matrix[name]["LS+prefetch"] for name in TABLE1
        )
        assert 2.0 <= best <= 6.0


class TestSelectiveCache:
    def test_cache_never_hurts(self, saf_matrix):
        matrix, _ = saf_matrix
        for name in TABLE1:
            assert matrix[name]["LS+cache"] <= matrix[name]["LS"] * 1.02

    def test_cache_best_or_near_best_where_paper_says(self, saf_matrix):
        matrix, _ = saf_matrix
        for name, entry in TABLE1.items():
            if not entry.expect.cache_is_best:
                continue
            best = min(matrix[name].values())
            assert matrix[name]["LS+cache"] <= best * 1.25 + 0.02, (
                f"{name}: cache SAF {matrix[name]['LS+cache']:.2f} should be "
                f"(near-)lowest; best is {best:.2f}"
            )

    def test_cache_not_best_for_usr1_src22(self, saf_matrix):
        matrix, _ = saf_matrix
        for name in ("usr_1", "src2_2"):
            others = [
                value
                for key, value in matrix[name].items()
                if key != "LS+cache"
            ]
            assert matrix[name]["LS+cache"] > min(others), (
                f"{name}: paper says caching is NOT the best technique here"
            )

    def test_w91_cache_below_one(self, saf_matrix):
        # Paper: caching takes w91 from 3.7 to 0.2.  Our archetype lands
        # below 1.0 with a >3x improvement (documented in EXPERIMENTS.md).
        matrix, _ = saf_matrix
        assert matrix["w91"]["LS+cache"] < 1.0
        assert matrix["w91"]["LS"] / matrix["w91"]["LS+cache"] > 3.0


class TestFig2SeekCounts:
    def test_ls_write_seeks_collapse(self, saf_matrix):
        _, traces = saf_matrix
        for name in ("usr_0", "w84", "src2_2"):
            trace = traces[name]
            nols = replay(trace, build_translator(trace, NOLS)).stats
            ls = replay(trace, build_translator(trace, LS)).stats
            assert ls.write_seeks < nols.write_seeks / 10


class TestFig4DistanceSpread:
    def test_ls_spreads_distances_beyond_window(self, saf_matrix):
        from repro.analysis.distances import fraction_within
        from repro.core.recorders import SeekLogRecorder

        _, traces = saf_matrix
        for name in ("src2_2", "usr_0", "w84", "w64"):
            trace = traces[name]
            nols_rec, ls_rec = SeekLogRecorder(), SeekLogRecorder()
            Simulator([nols_rec]).run(trace, build_translator(trace, NOLS))
            Simulator([ls_rec]).run(trace, build_translator(trace, LS))
            window_gib = 0.25
            assert fraction_within(ls_rec.distances, window_gib) <= (
                fraction_within(nols_rec.distances, window_gib) + 1e-9
            ), name


class TestFig5Concentration:
    def test_fragments_concentrate_in_few_reads(self, saf_matrix):
        _, traces = saf_matrix
        for name in ("usr_0", "hm_1", "w20", "w36"):
            recorder = FragmentationRecorder()
            trace = traces[name]
            Simulator([recorder]).run(trace, build_translator(trace, LS))
            share = fraction_of_fragments_in_top_reads(recorder.read_fragments, 0.2)
            assert share >= 0.25, f"{name}: top-20% share {share:.2f} not skewed"


class TestFig8Misorder:
    def test_high_misorder_workloads(self, saf_matrix):
        _, traces = saf_matrix
        # Paper: ~1/20 for src2_2, ~1/25 for w106.
        assert 0.02 <= misorder_rate(traces["src2_2"]) <= 0.10
        assert 0.02 <= misorder_rate(traces["w106"]) <= 0.10

    def test_low_misorder_workloads(self, saf_matrix):
        _, traces = saf_matrix
        for name in ("usr_1", "w93", "w76"):
            assert misorder_rate(traces[name]) < 0.005


class TestFig10CacheSizing:
    def test_cache_friendly_workloads_fit_tens_of_mb(self, saf_matrix):
        _, traces = saf_matrix
        for name in ("hm_1", "w55", "w106"):
            recorder = FragmentPopularityRecorder()
            trace = traces[name]
            Simulator([recorder]).run(trace, build_translator(trace, LS))
            curve = recorder.curve()
            assert curve.cache_mib_for_access_share(0.8) <= 64.0, name

    def test_cache_unfriendly_working_sets_exceed_64mb(self, saf_matrix):
        _, traces = saf_matrix
        for name in ("usr_1", "src2_2"):
            recorder = FragmentPopularityRecorder()
            trace = traces[name]
            Simulator([recorder]).run(trace, build_translator(trace, LS))
            curve = recorder.curve()
            assert curve.cumulative_mib[-1] > 64.0, name
