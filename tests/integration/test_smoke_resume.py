"""The ``make smoke`` contract as an in-process integration test.

A tiny full ``all`` run with ``--keep-going`` must exit 0, dump valid JSON
plus a complete manifest, and an immediate ``--resume`` of the same run
must skip every exhibit and also exit 0.
"""

import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.registry import EXHIBITS


@pytest.mark.slow
class TestSmokeRun:
    def test_all_then_resume(self, tmp_path, capsys):
        out = str(tmp_path)
        args = ["all", "--scale", "0.05", "--out", out, "--keep-going"]
        assert main(args) == 0
        capsys.readouterr()

        manifest = json.loads((tmp_path / "run.json").read_text())
        assert set(manifest["exhibits"]) == set(EXHIBITS)
        assert all(e["status"] == "ok" for e in manifest["exhibits"].values())
        for name in EXHIBITS:
            with (tmp_path / f"{name}.json").open() as handle:
                json.load(handle)

        # Second run with --resume: everything skips, still exit 0.
        assert main(args + ["--resume"]) == 0
        output = capsys.readouterr().out
        for name in EXHIBITS:
            assert f"=== {name}: already complete, skipping (resume)" in output
        assert f"{len(EXHIBITS)}/{len(EXHIBITS)} exhibits ok" in output

    def test_failing_exhibit_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import registry

        def boom(seed=42, scale=1.0, out_dir=None):
            raise RuntimeError("smoke boom")

        fakes = dict(registry.EXHIBITS)
        fakes["fig2"] = boom
        monkeypatch.setattr(registry, "EXHIBITS", fakes)
        code = main(
            ["fig2", "fig3", "--scale", "0.05", "--out", str(tmp_path), "--keep-going"]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "1/2 exhibits ok" in output
        assert "smoke boom" in output
