"""Smoke-run the macro-benchmark harness (``make bench-smoke``).

``benchmarks/bench_kernels.py`` is a plain script outside the package, so
a refactor of the kernels or the sweep engine can silently break it
without any import failing in tier-1.  This test runs every benchmark at
a tiny op count — no gating, no baseline comparison — purely to prove
the harness still executes end to end and emits the report shape
``check_regression.py`` consumes.
"""

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "bench_kernels.py"
_spec = importlib.util.spec_from_file_location("bench_kernels", _SCRIPT)
bench_kernels = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_kernels)

EXPECTED_BENCHMARKS = (
    "replay_nols",
    "replay_ls",
    "replay_ls_all",
    "replay_ls_write_heavy",
    "replay_ls_write_heavy_all",
    "replay_multifrontier",
    "replay_cleaning",
    "sweep_fig11",
    "sweep_cache_ablation",
    "ingest_msr",
    "analysis_nols",
    "jobs_scaling",
    "ingest_cold_parallel",
)

#: Which non-reference side(s) each benchmark reports a speedup on.
FAST_SIDES = {
    "replay_nols": ("batch",),
    "replay_ls": ("batch",),
    "replay_ls_all": ("batch",),
    "replay_ls_write_heavy": ("batch",),
    "replay_ls_write_heavy_all": ("batch",),
    "replay_multifrontier": ("batch",),
    "replay_cleaning": ("batch",),
    "sweep_fig11": ("sweep",),
    "sweep_cache_ablation": ("sweep",),
    "ingest_msr": ("columnar", "warm_store"),
    "analysis_nols": ("fast",),
    "jobs_scaling": ("cold_jobs4", "warm_jobs1", "warm_jobs4"),
    "ingest_cold_parallel": ("jobs4",),
}


def test_every_benchmark_runs_at_smoke_scale(tmp_path):
    report = bench_kernels.run(2_000, repeat=1, include_runner=False)
    assert report["ops"] == 2_000
    results = report["results"]
    assert tuple(results) == EXPECTED_BENCHMARKS
    for name, sides in FAST_SIDES.items():
        entry = results[name]
        assert entry["reference"]["seconds"] >= 0.0
        for side in sides:
            assert entry[side]["speedup_vs_reference"] > 0.0, f"{name}.{side}"
    # The sweep benches must report the grid sizes the gates describe.
    assert results["sweep_fig11"]["configs"] == 5
    assert results["sweep_cache_ablation"]["configs"] == len(
        bench_kernels.CACHE_SWEEP_MIB
    )
    # jobs_scaling covers every paper exhibit end to end.
    assert results["jobs_scaling"]["exhibits"] == list(bench_kernels.PAPER_EXHIBITS)
    assert results["jobs_scaling"]["jobs"] == 4
    # ingest_cold_parallel covers every Table I workload.
    from repro.workloads import TABLE1

    assert results["ingest_cold_parallel"]["workloads"] == len(TABLE1)
    assert results["ingest_cold_parallel"]["jobs"] == 4

    # And the CLI wrapper must serialize it as valid JSON.
    out = tmp_path / "smoke.json"
    assert bench_kernels.main(["--ops", "1000", "--no-runner", "--out", str(out)]) == 0
    assert json.loads(out.read_text())["ops"] == 1_000
