"""Example-script smoke tests.

Each example must be importable (no module-level side effects) and expose
a ``main``; the cheapest one runs end-to-end.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_present(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "database_scan_workload",
            "archival_smr_store",
            "technique_tuning",
            "replay_real_trace",
            "cleaning_and_waf",
            "seek_time_costs",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main(self, path):
        module = load(path)
        assert callable(module.main)
        assert module.__doc__, f"{path.stem} lacks a docstring"

    def test_replay_real_trace_demo_runs(self, tmp_path):
        # The cheapest end-to-end example: writes its own demo MSR file.
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "replay_real_trace.py")],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 0, result.stderr
        assert "SAF total" in result.stdout
