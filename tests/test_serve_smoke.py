"""Tier-1 gate for the streaming service: the full chaos smoke run.

Boots the real daemon (``python -m repro serve-smoke``) in a subprocess:
three concurrent tenants, one ``kill -9``'d worker, one corrupted
checkpoint, exact-recovery assertions, clean shutdown.  The subprocess
boundary doubles as a **hard watchdog** — if any part of the service
wedges (a lost wakeup, a worker that never answers), the timeout kills
the whole process tree (workers are daemon processes of the child) and
the test fails instead of hanging the suite.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Generous ceiling: the run takes ~20 s; a wedged service never finishes.
WATCHDOG_S = 240


@pytest.mark.slow
def test_serve_smoke_chaos_run_recovers_exactly(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve-smoke",
        "--root",
        str(tmp_path / "state"),
        "--ops",
        "3000",
    ]
    try:
        proc = subprocess.run(
            command,
            env=env,
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=WATCHDOG_S,
        )
    except subprocess.TimeoutExpired as exc:
        pytest.fail(
            f"serve-smoke wedged past the {WATCHDOG_S}s watchdog\n"
            f"stdout:\n{exc.stdout}\nstderr:\n{exc.stderr}"
        )
    assert proc.returncode == 0, (
        f"serve-smoke failed ({proc.returncode})\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "serve-smoke OK" in proc.stdout
    # The chaos injections actually happened (they print as they fire).
    assert "kill -9 alpha worker" in proc.stdout
    assert "corrupted" in proc.stdout
    assert "clean shutdown" in proc.stdout
