"""End-to-end load driver runs against a real daemon (small scale)."""

import pytest

from repro.core.config import LS, LS_DEFRAG
from repro.load.driver import LoadReport, TenantLoad, run_load
from repro.load.schedule import arrival_offsets
from repro.service.daemon import DaemonConfig
from repro.service.harness import DaemonThread

MIX = (("hm_1", 0.8), ("usr_1", 0.2))


@pytest.fixture()
def daemon(tmp_path):
    server = DaemonThread(
        tmp_path / "state", config=DaemonConfig(port=0, queue_depth=64)
    )
    port = server.start()
    yield port
    server.stop()


def _spec(name, wire, ops=6_000, **kw):
    defaults = dict(
        components=MIX, config=LS, total_ops=ops, batch_ops=500,
        wire=wire, window=8, seed=17,
    )
    defaults.update(kw)
    return TenantLoad(name=name, **defaults)


@pytest.mark.slow
def test_mixed_wire_tenants_report_fully(daemon, tmp_path):
    tenants = [
        _spec("bin_t", "bin"),
        _spec("json_t", "json", config=LS_DEFRAG, seed=18),
    ]
    report = run_load("127.0.0.1", daemon, tenants, query_interval_s=0.01)
    assert isinstance(report, LoadReport)
    assert report.ops == 12_000
    assert report.seconds > 0 and report.ops_per_s > 0
    assert report.resyncs == 0
    assert report.peak_rss_mib > 0
    # Every batch earned a latency sample (12 batches per tenant).
    assert report.per_tenant["bin_t"]["batches"] == 12
    assert report.per_tenant["json_t"]["batches"] == 12
    assert report.apply_p99_ms >= report.apply_p50_ms > 0
    # The live-query sidecar actually ran against open sessions.
    assert report.queries > 0
    assert report.query_p99_ms >= report.query_p50_ms > 0
    round_trip = report.to_dict()
    assert round_trip["ops"] == 12_000
    assert set(round_trip["per_tenant"]) == {"bin_t", "json_t"}


@pytest.mark.slow
def test_paced_burst_schedule_stretches_the_run(daemon):
    # The daemon could absorb 4000 ops instantly, but pacing must hold
    # the run open until at least the last scheduled send.
    floor = arrival_offsets(
        8, 500, 10_000, kind="burst", period_s=0.2, duty=0.25
    )[-1]
    assert floor > 0.05
    report = run_load(
        "127.0.0.1",
        daemon,
        [_spec("paced", "bin", ops=4_000)],
        target_ops_per_s=10_000,
        schedule="burst",
        period_s=0.2,
        duty=0.25,
        live_queries=False,
    )
    assert report.ops == 4_000
    assert report.seconds >= floor
    assert report.queries == 0


@pytest.mark.slow
def test_tenant_error_propagates(daemon):
    bad = TenantLoad(
        name="bad", components=(("no_such_workload", 1.0),),
        total_ops=1_000, wire="bin",
    )
    with pytest.raises(KeyError, match="no_such_workload"):
        run_load("127.0.0.1", daemon, [bad], live_queries=False)
    with pytest.raises(ValueError, match="at least one"):
        run_load("127.0.0.1", daemon, [])
