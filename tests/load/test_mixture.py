"""Mixture synthesis: determinism, disjoint regions, riffle shape."""

import numpy as np
import pytest

from repro.load.mixture import PRESET_MIXTURES, build_mixture, preset

TWO = (("hm_1", 0.7), ("usr_1", 0.3))


def test_same_arguments_same_columns():
    a = build_mixture(TWO, 20_000, seed=11)
    b = build_mixture(TWO, 20_000, seed=11)
    for left, right in zip(a[:3], b[:3]):
        np.testing.assert_array_equal(left, right)
    assert a[3] == b[3]


def test_seed_changes_the_stream():
    a = build_mixture(TWO, 20_000, seed=1)
    b = build_mixture(TWO, 20_000, seed=2)
    assert not np.array_equal(a[1], b[1])


def test_components_occupy_disjoint_lba_regions():
    is_read, lba, length, capacity = build_mixture(TWO, 20_000, seed=3)
    # Component 0 was stacked first: its region starts at LBA 0, and the
    # second component's region starts at component 0's max_end.  Every
    # op must land inside the declared capacity, and both regions must
    # actually be populated.
    solo = build_mixture(TWO[:1], 14_000, seed=3)
    boundary = solo[3]
    assert 0 < boundary < capacity
    assert int(lba.min()) >= 0
    assert int((lba + length).max()) <= capacity
    below = int((lba < boundary).sum())
    above = int((lba >= boundary).sum())
    assert below > 0 and above > 0
    # Weights steer the split: the 0.7 component contributes more ops.
    assert below > above


def test_ops_land_near_the_requested_total():
    total = 30_000
    is_read, lba, length, _ = build_mixture(TWO, total, seed=5)
    assert len(is_read) == len(lba) == len(length)
    # Generators emit whole phase schedules, so the count tracks the
    # request loosely, not exactly; each component is truncated to its
    # weighted share.
    assert 0 < len(lba) <= total


def test_riffle_leads_with_the_first_component():
    _, lba, _, _ = build_mixture(TWO, 20_000, seed=3, run_ops=512)
    boundary = build_mixture(TWO[:1], 14_000, seed=3)[3]
    assert (lba[:512] < boundary).all()


def test_single_component_passes_through():
    mix = build_mixture((("hm_1", 1.0),), 5_000, seed=9)
    solo = build_mixture((("hm_1", 0.25),), 5_000, seed=9)
    np.testing.assert_array_equal(mix[1], solo[1])


def test_input_validation():
    with pytest.raises(ValueError, match="at least one"):
        build_mixture((), 1000)
    with pytest.raises(ValueError, match="positive"):
        build_mixture(TWO, 0)
    with pytest.raises(ValueError, match="weights"):
        build_mixture((("hm_1", 0.0),), 1000)


def test_presets_are_resolvable():
    for name in PRESET_MIXTURES:
        components = preset(name)
        assert components and all(w > 0 for _, w in components)
        build_mixture(components, 2_000, seed=0)
    with pytest.raises(KeyError, match="valid"):
        preset("nope")
