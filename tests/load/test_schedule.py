"""Arrival schedules: monotonic offsets, mean-rate preservation."""

import numpy as np
import pytest

from repro.load.schedule import KINDS, arrival_offsets


def test_unthrottled_is_all_zeros():
    for rate in (None, 0, -5.0):
        offsets = arrival_offsets(40, 100, rate)
        assert offsets.shape == (40,)
        assert not offsets.any()


def test_steady_hits_the_target_rate():
    offsets = arrival_offsets(101, 200, 10_000.0)
    gaps = np.diff(offsets)
    np.testing.assert_allclose(gaps, 200 / 10_000.0)
    # 100 gaps of 20ms: the run spans exactly 2 seconds.
    assert offsets[-1] == pytest.approx(2.0)


@pytest.mark.parametrize("kind", KINDS)
def test_offsets_are_non_decreasing_and_finite(kind):
    offsets = arrival_offsets(
        500, 100, 25_000.0, kind=kind, period_s=0.5, amplitude=0.8, duty=0.25
    )
    assert offsets.shape == (500,)
    assert np.isfinite(offsets).all()
    assert (np.diff(offsets) >= 0).all()
    assert offsets[0] == 0.0


def test_diurnal_modulates_but_preserves_the_mean():
    steady = arrival_offsets(400, 100, 20_000.0, kind="steady")
    diurnal = arrival_offsets(
        400, 100, 20_000.0, kind="diurnal", period_s=1.0, amplitude=0.8
    )
    gaps = np.diff(diurnal)
    # Peaks send faster than steady, troughs slower...
    assert gaps.min() < np.diff(steady).min()
    assert gaps.max() > np.diff(steady).max()
    # ...while the whole run still lands near the steady duration.
    assert diurnal[-1] == pytest.approx(steady[-1], rel=0.25)


def test_burst_alternates_fire_and_silence():
    offsets = arrival_offsets(
        200, 100, 10_000.0, kind="burst", period_s=1.0, duty=0.25
    )
    gaps = np.diff(offsets)
    # Intra-burst gaps run at rate/duty (4x speed); inter-burst gaps
    # skip the rest of a period.
    assert gaps.min() == pytest.approx(100 / (10_000.0 / 0.25))
    assert gaps.max() > 0.5
    # Every send happens inside the first `duty` of its period.
    phase = np.mod(offsets, 1.0)
    assert (phase < 0.25 + 1e-9).all()


def test_empty_and_invalid():
    assert arrival_offsets(0, 100, 1000.0).shape == (0,)
    with pytest.raises(ValueError, match="unknown schedule"):
        arrival_offsets(10, 100, 1000.0, kind="tidal")
