"""Simulator / SimStats / recorder-dispatch tests."""

import pytest

from repro.core.outcomes import SimStats
from repro.core.recorders import OutcomeLogRecorder
from repro.core.simulator import Simulator, replay
from repro.core.translators import InPlaceTranslator, LogStructuredTranslator
from repro.trace.record import IORequest
from repro.trace.trace import Trace


class TestSimulatorRun:
    def test_run_result_fields(self, tiny_trace):
        result = replay(tiny_trace, InPlaceTranslator())
        assert result.trace_name == "tiny"
        assert result.translator == "NoLS"
        assert result.stats.ops == 6

    def test_stats_aggregate_outcomes(self, tiny_trace):
        result = replay(tiny_trace, InPlaceTranslator())
        assert result.stats.reads == 3
        assert result.stats.writes == 3
        assert result.stats.sectors_read == 40
        assert result.stats.sectors_written == 20

    def test_recorders_see_every_op(self, tiny_trace):
        recorder = OutcomeLogRecorder()
        replay(tiny_trace, InPlaceTranslator(), [recorder])
        assert len(recorder.outcomes) == len(tiny_trace)

    def test_progress_callback(self, tiny_trace):
        calls = []
        sim = Simulator(progress_every=2, progress=lambda done, total: calls.append((done, total)))
        sim.run(tiny_trace, InPlaceTranslator())
        assert calls == [(2, 6), (4, 6), (6, 6)]

    def test_invalid_progress_every(self):
        with pytest.raises(ValueError):
            Simulator(progress_every=0)

    def test_add_recorder(self, tiny_trace):
        sim = Simulator()
        recorder = OutcomeLogRecorder()
        sim.add_recorder(recorder)
        sim.run(tiny_trace, InPlaceTranslator())
        assert recorder.outcomes


class TestSimStats:
    def test_fragmented_read_counting(self):
        trace = Trace(
            [
                IORequest.write(4, 2),
                IORequest.read(0, 10),   # 3 fragments
                IORequest.read(4, 2),    # 1 fragment
            ]
        )
        result = replay(trace, LogStructuredTranslator(frontier_base=1000))
        assert result.stats.fragmented_reads == 1
        assert result.stats.read_fragments == 4

    def test_total_seeks_includes_defrag(self):
        stats = SimStats(read_seeks=3, write_seeks=2, defrag_write_seeks=1)
        assert stats.total_seeks == 6
        assert stats.total_write_seeks == 3

    def test_empty_trace(self):
        result = replay(Trace([]), InPlaceTranslator())
        assert result.stats.ops == 0
        assert result.stats.total_seeks == 0


class TestWriteAmplification:
    def test_no_defrag_is_one(self):
        from repro.core.config import LS, build_translator

        trace = Trace([IORequest.write(0, 8), IORequest.read(0, 8)])
        stats = replay(trace, build_translator(trace, LS)).stats
        assert stats.write_amplification == 1.0

    def test_defrag_rewrites_amplify(self):
        from repro.core.config import LS_DEFRAG, build_translator

        trace = Trace(
            [
                IORequest.write(4, 2),
                IORequest.write(8, 2),
                IORequest.read(0, 12),   # fragmented -> defrag rewrite of 12
            ]
        )
        stats = replay(trace, build_translator(trace, LS_DEFRAG)).stats
        assert stats.write_amplification == (4 + 12) / 4

    def test_no_writes_is_one(self):
        stats = SimStats()
        assert stats.write_amplification == 1.0
