"""Translator semantics tests: NoLS baseline and log-structured model."""

import pytest

from repro.core.outcomes import AccessSource
from repro.core.translators import InPlaceTranslator, LogStructuredTranslator
from repro.extentmap.block_map import BlockMap
from repro.trace.record import IORequest


class TestInPlaceTranslator:
    def test_serves_at_lba(self):
        t = InPlaceTranslator()
        outcome = t.submit(IORequest.read(100, 8))
        assert outcome.accesses[0].pba == 100
        assert outcome.fragments == 1

    def test_seek_classification(self):
        t = InPlaceTranslator()
        t.submit(IORequest.write(0, 8))
        read = t.submit(IORequest.read(100, 8))
        write = t.submit(IORequest.write(300, 8))
        assert read.read_seeks == 1 and read.write_seeks == 0
        assert write.write_seeks == 1 and write.read_seeks == 0

    def test_sequential_ops_no_seeks(self, sequential_write_trace):
        t = InPlaceTranslator()
        total = sum(t.submit(r).total_seeks for r in sequential_write_trace)
        assert total == 0

    def test_description(self):
        assert InPlaceTranslator().description == "NoLS"


class TestLogStructuredWrites:
    def test_write_goes_to_frontier(self):
        t = LogStructuredTranslator(frontier_base=1000)
        outcome = t.submit(IORequest.write(0, 8))
        assert outcome.accesses[0].pba == 1000
        assert t.frontier == 1008

    def test_back_to_back_writes_never_seek(self):
        t = LogStructuredTranslator(frontier_base=1000)
        t.submit(IORequest.write(500, 8))
        for lba in (0, 900, 4, 800):
            outcome = t.submit(IORequest.write(lba, 8))
            assert outcome.write_seeks == 0

    def test_write_after_read_elsewhere_seeks(self):
        t = LogStructuredTranslator(frontier_base=1000)
        t.submit(IORequest.write(0, 8))
        t.submit(IORequest.read(500, 8))
        outcome = t.submit(IORequest.write(100, 8))
        assert outcome.write_seeks == 1

    def test_log_sectors_written(self):
        t = LogStructuredTranslator(frontier_base=1000)
        t.submit(IORequest.write(0, 8))
        t.submit(IORequest.write(0, 8))
        assert t.log_sectors_written == 16

    def test_negative_frontier_rejected(self):
        with pytest.raises(ValueError):
            LogStructuredTranslator(frontier_base=-1)


class TestLogStructuredReads:
    def test_unwritten_data_at_identity(self):
        t = LogStructuredTranslator(frontier_base=1000)
        outcome = t.submit(IORequest.read(100, 8))
        assert outcome.accesses[0].pba == 100
        assert outcome.accesses[0].hole
        assert outcome.fragments == 1

    def test_read_follows_remap(self):
        t = LogStructuredTranslator(frontier_base=1000)
        t.submit(IORequest.write(100, 8))
        outcome = t.submit(IORequest.read(100, 8))
        assert outcome.accesses[0].pba == 1000
        assert not outcome.accesses[0].hole

    def test_fragmented_read_counts_per_fragment_seeks(self):
        t = LogStructuredTranslator(frontier_base=1000)
        t.submit(IORequest.write(4, 2))  # fragments 0..10
        outcome = t.submit(IORequest.read(0, 10))
        # [hole 0-4, log 4-6, hole 6-10] = 3 fragments
        assert outcome.fragments == 3
        assert outcome.read_seeks == 3

    def test_read_crossing_frontier_base_rejected(self):
        t = LogStructuredTranslator(frontier_base=100)
        with pytest.raises(ValueError, match="crosses the frontier base"):
            t.submit(IORequest.read(96, 8))

    def test_temporal_read_order_is_seek_free(self):
        # §III "small file creation": reading back in write order costs at
        # most the initial seek.
        t = LogStructuredTranslator(frontier_base=10_000)
        lbas = [500, 10, 900, 42]
        for lba in lbas:
            t.submit(IORequest.write(lba, 8))
        seeks = sum(t.submit(IORequest.read(lba, 8)).read_seeks for lba in lbas)
        assert seeks == 1  # one seek back to the start of the log run

    def test_sequential_read_after_random_write_amplifies(self):
        # §III second thought experiment.
        t = LogStructuredTranslator(frontier_base=10_000)
        for lba in (72, 8, 40, 24, 56):
            t.submit(IORequest.write(lba, 8))
        outcome = t.submit(IORequest.read(0, 80))
        assert outcome.fragments >= 5
        assert outcome.read_seeks >= 5


class TestPluggableMap:
    def test_block_map_backend_equivalent(self):
        a = LogStructuredTranslator(frontier_base=1000)
        b = LogStructuredTranslator(frontier_base=1000, address_map=BlockMap())
        ops = [
            IORequest.write(4, 2),
            IORequest.write(0, 3),
            IORequest.read(0, 10),
            IORequest.write(8, 2),
            IORequest.read(2, 6),
        ]
        for op in ops:
            oa, ob = a.submit(op), b.submit(op)
            assert (oa.fragments, oa.read_seeks, oa.write_seeks) == (
                ob.fragments,
                ob.read_seeks,
                ob.write_seeks,
            )


class TestDescriptionAndIntrospection:
    def test_description_reflects_techniques(self):
        from repro.core.defrag import OpportunisticDefrag
        from repro.core.prefetch import LookAheadBehindPrefetcher
        from repro.core.selective_cache import SelectiveFragmentCache

        assert LogStructuredTranslator(0).description == "LS"
        assert (
            LogStructuredTranslator(0, defrag=OpportunisticDefrag()).description
            == "LS+defrag"
        )
        t = LogStructuredTranslator(
            0,
            defrag=OpportunisticDefrag(),
            prefetcher=LookAheadBehindPrefetcher(),
            cache=SelectiveFragmentCache(),
        )
        assert t.description == "LS+defrag+prefetch+cache"

    def test_static_fragmentation(self):
        t = LogStructuredTranslator(frontier_base=1000)
        t.submit(IORequest.write(0, 8))
        t.submit(IORequest.write(100, 8))
        assert t.static_fragmentation() == 2

    def test_disk_access_sources(self):
        t = LogStructuredTranslator(frontier_base=1000)
        t.submit(IORequest.write(0, 8))
        outcome = t.submit(IORequest.read(0, 8))
        assert all(a.source is AccessSource.DISK for a in outcome.accesses)
