"""Finite-disk cleaning translator tests."""

import random

import pytest

from repro.core.cleaning import ZonedCleaningTranslator
from repro.disk.zones import SequentialZoneError
from repro.trace.record import IORequest
from repro.util.units import mib_to_sectors

BASE = mib_to_sectors(8)


def make_translator(zone_mib=1.0, n_zones=8, reserve=2):
    return ZonedCleaningTranslator(
        frontier_base=BASE, zone_mib=zone_mib, n_zones=n_zones, reserve_zones=reserve
    )


def fill_random(translator, n_writes, space_mib=4, seed=1, length=8):
    rng = random.Random(seed)
    limit = mib_to_sectors(space_mib) - length
    for i in range(n_writes):
        lba = rng.randrange(0, limit) // 8 * 8
        translator.submit(IORequest.write(lba, length, i * 1e-3))
    return rng


class TestBasicOperation:
    def test_write_then_read_round_trip(self):
        t = make_translator()
        t.submit(IORequest.write(100, 8))
        outcome = t.submit(IORequest.read(100, 8))
        assert outcome.fragments == 1
        assert outcome.accesses[0].pba >= BASE  # served from the log

    def test_unwritten_read_at_identity(self):
        t = make_translator()
        outcome = t.submit(IORequest.read(100, 8))
        assert outcome.accesses[0].pba == 100
        assert outcome.accesses[0].hole

    def test_request_beyond_identity_region_rejected(self):
        t = make_translator()
        with pytest.raises(ValueError, match="crosses the identity/log boundary"):
            t.submit(IORequest.write(BASE - 4, 8))

    def test_write_larger_than_half_log_rejected(self):
        t = make_translator(zone_mib=1.0, n_zones=4, reserve=2)
        with pytest.raises(ValueError, match="too large"):
            t.submit(IORequest.write(0, mib_to_sectors(3)))

    def test_description(self):
        assert make_translator().description == "LS+cleaning"


class TestCleaningBehaviour:
    def test_cleaning_triggers_when_log_fills(self):
        t = make_translator()
        fill_random(t, 3000)  # 3000 * 4 KiB ~ 12 MiB writes into 8 MiB log
        assert t.cleaning_stats.cleanings > 0
        assert t.cleaning_stats.write_amplification > 1.0

    def test_data_survives_cleaning(self):
        t = make_translator()
        # A pinned value that never gets overwritten, then churn.
        t.submit(IORequest.write(mib_to_sectors(4), 8))
        pinned_first = t.submit(IORequest.read(mib_to_sectors(4), 8))
        fill_random(t, 3000)
        assert t.cleaning_stats.cleanings > 0
        pinned_after = t.submit(IORequest.read(mib_to_sectors(4), 8))
        # Still mapped (in the log, not a hole), single fragment.
        assert not pinned_after.accesses[0].hole
        assert pinned_after.fragments == 1
        assert pinned_first.accesses[0].pba != pinned_after.accesses[0].pba or True

    def test_map_matches_shadow_after_cleaning(self):
        t = make_translator()
        rng = random.Random(7)
        shadow = {}
        for i in range(2500):
            lba = rng.randrange(0, mib_to_sectors(4) - 8) // 8 * 8
            t.submit(IORequest.write(lba, 8, i * 1e-3))
            shadow[lba] = i
        assert t.cleaning_stats.cleanings > 0
        # Every shadowed lba must still resolve to exactly one mapped piece.
        for lba in list(shadow)[:200]:
            outcome = t.submit(IORequest.read(lba, 8))
            assert outcome.fragments == 1
            assert not outcome.accesses[0].hole

    def test_live_accounting_bounded_by_space(self):
        t = make_translator()
        fill_random(t, 3000)
        assert t.live_sectors() <= mib_to_sectors(4)

    def test_live_accounting_exact_across_zone_boundary(self):
        # A write that straddles a zone boundary is mapped as two pieces
        # the extent map merges back into one PBA-contiguous segment.
        # Invalidating that merged segment must split the live-count
        # decrement per zone, or a stale sector survives in the ledger.
        t = ZonedCleaningTranslator(
            frontier_base=512, zone_mib=0.0625, n_zones=6, reserve_zones=2
        )
        for length in (1, 1, 1, 1, 13, 28, 28, 28, 28, 28, 28):
            t.submit(IORequest.write(0, length))
        assert t.live_sectors() == 28

    def test_reserve_zones_maintained_after_writes(self):
        t = make_translator(reserve=3)
        fill_random(t, 2000)
        assert t.free_zones() >= 1  # frontier may be mid-zone; reserve held

    def test_workload_exceeding_capacity_raises(self):
        t = make_translator(zone_mib=1.0, n_zones=4, reserve=1)
        with pytest.raises(SequentialZoneError, match="exceeds log capacity"):
            # 6 MiB of distinct live data into a 4 MiB log.
            for i in range(1536):
                t.submit(IORequest.write(i * 8, 8))

    def test_waf_increases_with_pressure(self):
        roomy = make_translator(zone_mib=1.0, n_zones=24)
        tight = make_translator(zone_mib=1.0, n_zones=8)
        fill_random(roomy, 3000)
        fill_random(tight, 3000)
        assert (
            tight.cleaning_stats.write_amplification
            >= roomy.cleaning_stats.write_amplification
        )


class TestValidation:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ZonedCleaningTranslator(frontier_base=-1)
        with pytest.raises(ValueError):
            ZonedCleaningTranslator(frontier_base=0, reserve_zones=0)
        with pytest.raises(ValueError):
            ZonedCleaningTranslator(frontier_base=0, n_zones=2, reserve_zones=2)
