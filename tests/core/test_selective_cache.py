"""Translation-aware selective caching tests (Algorithm 3)."""

import pytest

from repro.core.selective_cache import SelectiveCacheConfig, SelectiveFragmentCache
from repro.core.translators import LogStructuredTranslator
from repro.trace.record import IORequest
from repro.util.units import BYTES_PER_MIB


def small_cache(capacity_mib=0.0625):  # 64 KiB: eviction triggers quickly
    return SelectiveFragmentCache(SelectiveCacheConfig(capacity_mib=capacity_mib))


class TestConfig:
    def test_paper_default_is_64mb(self):
        assert SelectiveCacheConfig().capacity_mib == 64.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            SelectiveCacheConfig(capacity_mib=0)
        with pytest.raises(ValueError):
            SelectiveCacheConfig(block_sectors=0)


class TestHitMissAccounting:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0, 8)
        cache.admit(0, 8)
        assert cache.lookup(0, 8)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert small_cache().hit_rate == 0.0

    def test_capacity_bytes(self):
        cache = small_cache(capacity_mib=1.0)
        assert cache.capacity_bytes == BYTES_PER_MIB

    def test_eviction_counted(self):
        cache = small_cache(capacity_mib=0.0078125)  # 8 KiB = 2 blocks
        cache.admit(0, 8)
        cache.admit(8, 8)
        cache.admit(16, 8)
        assert cache.evictions == 1

    def test_clear(self):
        cache = small_cache()
        cache.admit(0, 8)
        cache.clear()
        assert not cache.lookup(0, 8)


class TestCacheInTranslator:
    def make_fragmented(self, cache):
        t = LogStructuredTranslator(frontier_base=1000, cache=cache)
        t.submit(IORequest.write(4, 2))
        t.submit(IORequest.write(8, 2))
        return t

    def test_second_fragmented_read_hits(self):
        t = self.make_fragmented(small_cache())
        first = t.submit(IORequest.read(0, 12))
        second = t.submit(IORequest.read(0, 12))
        # Admission is whole-4KiB-block (the drive reads full blocks when
        # caching), so later hole pieces of the *first* read already hit
        # the blocks admitted for the earlier ones; the second read is
        # fully resident.
        assert first.cache_fragment_hits < first.fragments
        assert second.cache_fragment_hits == second.fragments
        assert second.read_seeks == 0

    def test_cache_hits_do_not_move_head(self):
        t = self.make_fragmented(small_cache())
        t.submit(IORequest.read(0, 12))
        t.submit(IORequest.read(0, 12))       # fully cached
        # Head still sits where the first read's last disk access ended.
        outcome = t.submit(IORequest.write(100, 2))
        assert outcome.write_seeks == 1

    def test_unfragmented_reads_bypass_cache(self):
        cache = small_cache()
        t = LogStructuredTranslator(frontier_base=1000, cache=cache)
        t.submit(IORequest.write(0, 8))
        t.submit(IORequest.read(0, 8))
        t.submit(IORequest.read(0, 8))
        assert cache.hits == 0 and cache.misses == 0

    def test_overwrite_redirects_reads_to_new_pba(self):
        # Stale cached blocks must not serve logically overwritten data:
        # the map redirects to new PBAs, which miss and re-admit.
        t = self.make_fragmented(small_cache())
        t.submit(IORequest.read(0, 12))
        t.submit(IORequest.write(4, 2))       # overwrite one fragment
        outcome = t.submit(IORequest.read(0, 12))
        new_pbas = [a.pba for a in outcome.accesses]
        assert t.frontier - 2 in new_pbas     # newest copy was read

    def test_thrash_when_working_set_exceeds_capacity(self):
        cache = small_cache(capacity_mib=0.0078125)  # 2 blocks
        t = LogStructuredTranslator(frontier_base=100_000, cache=cache)
        for lba in range(0, 200, 16):
            t.submit(IORequest.write(lba + 4, 2))
        # Loop over many fragmented ranges larger than the cache: second
        # pass still misses (LRU loop thrash).
        for _ in range(2):
            for lba in range(0, 200, 16):
                t.submit(IORequest.read(lba, 16))
        assert cache.hit_rate < 0.5
