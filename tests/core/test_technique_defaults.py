"""Default-constructed technique instances must not alias any state.

``def __init__(self, config: X = XConfig())`` evaluates the default once
at function-definition time, so every default-constructed instance shared
one config object — a latent aliasing bug (harmless only while the
configs stay frozen dataclasses).  The constructors now take ``None`` and
build a fresh config per instance; these tests pin that, and that the
*mutable* state (counters, LRU contents, window buffers, access counts)
of two default instances is fully independent.
"""

from __future__ import annotations

from repro.core.defrag import DefragConfig, OpportunisticDefrag
from repro.core.prefetch import LookAheadBehindPrefetcher, PrefetchConfig
from repro.core.selective_cache import SelectiveCacheConfig, SelectiveFragmentCache


def test_default_cache_instances_do_not_alias() -> None:
    first = SelectiveFragmentCache()
    second = SelectiveFragmentCache()
    assert first.config is not second.config
    assert first.config == SelectiveCacheConfig()

    first.admit(0, 8)
    assert first.lookup(0, 8)
    assert (first.hits, first.misses) == (1, 0)
    assert (second.hits, second.misses) == (0, 0)
    assert second.used_bytes == 0
    assert not second.lookup(0, 8)


def test_default_prefetcher_instances_do_not_alias() -> None:
    first = LookAheadBehindPrefetcher()
    second = LookAheadBehindPrefetcher()
    assert first.config is not second.config
    assert first.config == PrefetchConfig()

    first.note_fragment_read(10_000, 8)
    assert first.window_reads == 1
    assert first.covers(10_000, 8)
    assert second.window_reads == 0
    assert not second.covers(10_000, 8)


def test_default_defrag_instances_do_not_alias() -> None:
    first = OpportunisticDefrag(DefragConfig(min_fragments=2, min_accesses=2))
    second = OpportunisticDefrag(DefragConfig(min_fragments=2, min_accesses=2))
    assert first.config is not second.config

    assert not first.should_defragment(0, 64, fragments=3)
    assert first.tracked_ranges == 1
    assert second.tracked_ranges == 0
    # The second instance starts its own count: first sighting never fires.
    assert not second.should_defragment(0, 64, fragments=3)

    defaults = (OpportunisticDefrag(), OpportunisticDefrag())
    assert defaults[0].config is not defaults[1].config
    assert defaults[0].config == DefragConfig()


def test_explicit_config_still_respected() -> None:
    config = SelectiveCacheConfig(capacity_mib=1.0, block_sectors=4)
    cache = SelectiveFragmentCache(config)
    assert cache.config is config
    prefetcher = LookAheadBehindPrefetcher(PrefetchConfig(behind_kib=64.0))
    assert prefetcher.config.behind_kib == 64.0
    defrag = OpportunisticDefrag(DefragConfig(min_fragments=4))
    assert defrag.config.min_fragments == 4
