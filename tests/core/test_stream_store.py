"""The persistent fragment-stream store (repro.core.stream_store).

The store publishes recorded plain-LS streams and NoLS baseline summaries
keyed by trace *content* (:meth:`~repro.trace.trace.Trace.content_key`),
so any process replaying the same workload shares one recording.  These
tests pin the contract: exact round-trips (arrays, scalars and the
downstream kernels), read-only memory-mapped views, and healing — torn,
truncated, corrupt or foreign-schema entries count as misses, are
unlinked, and the next store call repairs them.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import fields

import numpy as np
import pytest

from repro.core.config import PAPER_CONFIGS
from repro.core.outcomes import SimStats
from repro.core.stream import (
    record_fragment_stream,
    stream_fragment_stats,
    stream_replay,
    stream_windowed_long_seeks,
)
from repro.core.stream_store import STREAM_SCHEMA, StreamStore, stream_key
from repro.workloads import synthesize_workload

SEED, SCALE = 42, 0.03


@pytest.fixture(scope="module")
def trace():
    return synthesize_workload("hm_1", seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def recorded(trace):
    return record_fragment_stream(trace)


@pytest.fixture
def store(tmp_path):
    return StreamStore(tmp_path / "streams")


class TestKey:
    def test_key_is_content_addressed(self, trace):
        again = synthesize_workload("hm_1", seed=SEED, scale=SCALE)
        assert trace is not again
        assert stream_key(trace) == stream_key(again)

    def test_key_separates_workloads(self, trace):
        other = synthesize_workload("hm_1", seed=SEED + 1, scale=SCALE)
        assert stream_key(trace) != stream_key(other)


class TestStreamRoundTrip:
    def test_arrays_scalars_and_kernels_identical(self, trace, recorded, store):
        store.store_stream(trace, recorded)
        loaded = store.load_stream(trace)
        assert loaded is not None
        assert loaded.layout is None  # store-loaded streams carry no translator
        for name in ("pba", "length", "kind", "op_index", "group_start", "group_size"):
            got, want = getattr(loaded, name), getattr(recorded, name)
            assert got.dtype == want.dtype, name
            assert np.array_equal(got, want), name
            assert not got.flags.writeable, name
        for name in (
            "trace_name", "frontier_base", "frontier", "reads", "writes",
            "sectors_read", "sectors_written", "read_fragments",
            "fragmented_reads",
        ):
            assert getattr(loaded, name) == getattr(recorded, name), name

        # Every downstream kernel must see the identical stream.
        for config in PAPER_CONFIGS:
            if config.defrag is not None:
                continue
            a = stream_replay(recorded, config)
            b = stream_replay(loaded, config)
            assert a.run_result.stats == b.run_result.stats, config.name
        assert stream_fragment_stats(loaded) == stream_fragment_stats(recorded)
        assert stream_windowed_long_seeks(loaded) == stream_windowed_long_seeks(
            recorded
        )

    def test_loaded_views_are_mmap_backed(self, trace, recorded, store):
        import mmap

        store.store_stream(trace, recorded)
        loaded = store.load_stream(trace)
        base = loaded.pba
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        assert isinstance(base, mmap.mmap), "stream columns must stay zero-copy"

    def test_miss_on_empty_store(self, trace, store):
        assert store.load_stream(trace) is None
        assert (store.hits, store.misses) == (0, 1)


class TestStreamHealing:
    def _primed(self, trace, recorded, store):
        path = store.store_stream(trace, recorded)
        assert store.load_stream(trace) is not None
        store.hits = store.misses = 0
        return path

    def test_corrupt_header_heals(self, trace, recorded, store):
        path = self._primed(trace, recorded, store)
        (path / "header.json").write_text("not json")
        assert store.load_stream(trace) is None
        assert not path.exists()
        assert (store.hits, store.misses) == (0, 1)
        store.store_stream(trace, recorded)
        assert store.load_stream(trace) is not None

    def test_torn_array_heals(self, trace, recorded, store):
        path = self._primed(trace, recorded, store)
        (path / "op_index.npy").write_bytes(b"torn")
        assert store.load_stream(trace) is None
        assert not path.exists()

    def test_truncated_array_heals(self, trace, recorded, store):
        path = self._primed(trace, recorded, store)
        pba = path / "pba.npy"
        pba.write_bytes(pba.read_bytes()[:-8])
        assert store.load_stream(trace) is None
        assert not path.exists()

    def test_foreign_schema_heals(self, trace, recorded, store):
        path = self._primed(trace, recorded, store)
        header = json.loads((path / "header.json").read_text())
        header["schema"] = STREAM_SCHEMA + 1
        (path / "header.json").write_text(json.dumps(header))
        assert store.load_stream(trace) is None
        assert not path.exists()

    def test_entry_for_another_trace_heals(self, trace, recorded, store):
        path = self._primed(trace, recorded, store)
        other = synthesize_workload("hm_1", seed=SEED + 1, scale=SCALE)
        squatting = store.path_for(other)
        shutil.copytree(path, squatting)
        assert store.load_stream(other) is None
        assert not squatting.exists()
        assert store.load_stream(trace) is not None  # original untouched


class TestBaselines:
    def _stats(self, trace):
        from repro.core.batch import batch_replay
        from repro.core.config import NOLS

        return batch_replay(trace, NOLS).stats

    def test_round_trip(self, trace, store):
        stats = self._stats(trace)
        store.store_baseline(trace, stats)
        assert store.load_baseline(trace) == stats
        assert (store.baseline_hits, store.baseline_misses) == (1, 0)

    def test_miss_then_heal(self, trace, store):
        assert store.load_baseline(trace) is None
        stats = self._stats(trace)
        path = store.store_baseline(trace, stats)
        path.write_text("{ torn")
        assert store.load_baseline(trace) is None
        assert not path.exists()
        store.store_baseline(trace, stats)
        assert store.load_baseline(trace) == stats

    def test_foreign_field_set_heals(self, trace, store):
        stats = self._stats(trace)
        path = store.store_baseline(trace, stats)
        blob = json.loads(path.read_text())
        blob["stats"]["from_the_future"] = 1
        path.write_text(json.dumps(blob))
        assert store.load_baseline(trace) is None
        assert not path.exists()

    def test_stats_fields_cover_simstats(self, trace, store):
        """The stored field set is exactly SimStats — a SimStats change
        must invalidate old entries rather than half-load them."""
        stats = self._stats(trace)
        path = store.store_baseline(trace, stats)
        blob = json.loads(path.read_text())
        assert set(blob["stats"]) == {f.name for f in fields(SimStats)}


class TestHousekeeping:
    def test_entries_len_and_clear(self, trace, recorded, store):
        from repro.core.batch import batch_replay
        from repro.core.config import NOLS

        store.store_stream(trace, recorded)
        store.store_baseline(trace, batch_replay(trace, NOLS).stats)
        assert len(store) == 2
        assert len(store.entries()) == 2
        assert store.clear() == 2
        assert len(store) == 0
