"""SAF metric tests."""

import math

from repro.core.metrics import SeekAmplification, seek_amplification
from repro.core.outcomes import SimStats


def stats(read=0, write=0, defrag=0):
    return SimStats(read_seeks=read, write_seeks=write, defrag_write_seeks=defrag)


class TestSeekAmplification:
    def test_basic_ratios(self):
        saf = seek_amplification(stats(read=20, write=2), stats(read=10, write=10))
        assert saf.read == 2.0
        assert saf.write == 0.2
        assert saf.total == 1.1

    def test_defrag_counts_as_write_seeks(self):
        saf = seek_amplification(stats(read=0, write=1, defrag=4), stats(read=5, write=5))
        assert saf.write == 1.0
        assert saf.total == 0.5

    def test_zero_baseline_with_seeks_is_inf(self):
        saf = seek_amplification(stats(read=5), stats())
        assert math.isinf(saf.read)
        assert math.isinf(saf.total)

    def test_zero_over_zero_is_one(self):
        saf = seek_amplification(stats(), stats())
        assert saf.read == saf.write == saf.total == 1.0

    def test_improvement_over(self):
        a = SeekAmplification(read=1, write=1, total=4.0)
        b = SeekAmplification(read=1, write=1, total=1.0)
        assert b.improvement_over(a) == 4.0
        assert a.improvement_over(b) == 0.25

    def test_improvement_over_zero_total(self):
        zero = SeekAmplification(read=0, write=0, total=0.0)
        other = SeekAmplification(read=1, write=1, total=2.0)
        assert math.isinf(zero.improvement_over(other))
        assert zero.improvement_over(zero) == 1.0
