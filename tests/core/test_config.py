"""Technique-bundle / factory tests."""

from repro.core.config import (
    ALL_CONFIGS,
    LS,
    LS_CACHE,
    LS_DEFRAG,
    LS_PREFETCH,
    NOLS,
    PAPER_CONFIGS,
    build_translator,
)
from repro.core.translators import InPlaceTranslator, LogStructuredTranslator
from repro.trace.record import IORequest
from repro.trace.trace import Trace


class TestPaperConfigs:
    def test_fig11_lineup(self):
        assert [c.name for c in PAPER_CONFIGS] == [
            "LS",
            "LS+defrag",
            "LS+prefetch",
            "LS+cache",
        ]

    def test_all_configs_includes_baseline(self):
        assert ALL_CONFIGS[0] is NOLS

    def test_cache_config_is_64mb(self):
        assert LS_CACHE.cache.capacity_mib == 64.0

    def test_single_technique_per_paper_config(self):
        assert LS.defrag is None and LS.prefetch is None and LS.cache is None
        assert LS_DEFRAG.defrag is not None and LS_DEFRAG.cache is None
        assert LS_PREFETCH.prefetch is not None and LS_PREFETCH.defrag is None
        assert LS_CACHE.cache is not None and LS_CACHE.prefetch is None


class TestBuildTranslator:
    def setup_method(self):
        self.trace = Trace([IORequest.write(100, 8)], name="t")

    def test_nols_builds_in_place(self):
        assert isinstance(build_translator(self.trace, NOLS), InPlaceTranslator)

    def test_ls_frontier_above_trace(self):
        translator = build_translator(self.trace, LS)
        assert isinstance(translator, LogStructuredTranslator)
        assert translator.frontier_base == self.trace.max_end

    def test_techniques_wired(self):
        assert build_translator(self.trace, LS_DEFRAG).defrag is not None
        assert build_translator(self.trace, LS_PREFETCH).prefetcher is not None
        assert build_translator(self.trace, LS_CACHE).cache is not None

    def test_fresh_state_per_build(self):
        a = build_translator(self.trace, LS)
        b = build_translator(self.trace, LS)
        a.submit(IORequest.write(0, 8))
        assert b.frontier == b.frontier_base


class TestLsAllConfig:
    def test_exported_and_composed(self):
        from repro.core.config import LS_ALL

        assert LS_ALL.defrag is not None
        assert LS_ALL.prefetch is not None
        assert LS_ALL.cache is not None
        assert LS_ALL.defrag.min_fragments == 4
        assert LS_ALL.defrag.min_accesses == 2

    def test_builds_fully_loaded_translator(self):
        from repro.core.config import LS_ALL

        trace = Trace([IORequest.write(0, 8)], name="t")
        translator = build_translator(trace, LS_ALL)
        assert translator.description == "LS+defrag+prefetch+cache"

    def test_in_all_configs(self):
        from repro.core.config import LS_ALL

        assert ALL_CONFIGS[-1] is LS_ALL
