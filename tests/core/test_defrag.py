"""Opportunistic defragmentation tests (Algorithm 1 + §IV-A throttles)."""

import pytest

from repro.core.defrag import DefragConfig, OpportunisticDefrag
from repro.core.translators import LogStructuredTranslator
from repro.trace.record import IORequest


class TestDefragConfig:
    def test_defaults_are_algorithm_1(self):
        config = DefragConfig()
        assert config.min_fragments == 2
        assert config.min_accesses == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            DefragConfig(min_fragments=1)
        with pytest.raises(ValueError):
            DefragConfig(min_accesses=0)


class TestPolicyDecisions:
    def test_unfragmented_never_defragments(self):
        policy = OpportunisticDefrag()
        assert not policy.should_defragment(0, 10, fragments=1)

    def test_default_triggers_on_first_fragmented_read(self):
        policy = OpportunisticDefrag()
        assert policy.should_defragment(0, 10, fragments=2)

    def test_min_fragments_threshold(self):
        policy = OpportunisticDefrag(DefragConfig(min_fragments=4))
        assert not policy.should_defragment(0, 10, fragments=3)
        assert policy.should_defragment(0, 10, fragments=4)

    def test_min_accesses_counts_per_range(self):
        policy = OpportunisticDefrag(DefragConfig(min_accesses=3))
        assert not policy.should_defragment(0, 10, fragments=2)
        assert not policy.should_defragment(0, 10, fragments=2)
        assert policy.should_defragment(0, 10, fragments=2)

    def test_min_accesses_separate_ranges(self):
        policy = OpportunisticDefrag(DefragConfig(min_accesses=2))
        assert not policy.should_defragment(0, 10, fragments=2)
        assert not policy.should_defragment(100, 10, fragments=2)
        assert policy.should_defragment(0, 10, fragments=2)

    def test_counter_resets_after_trigger(self):
        policy = OpportunisticDefrag(DefragConfig(min_accesses=2))
        policy.should_defragment(0, 10, fragments=2)
        assert policy.should_defragment(0, 10, fragments=2)
        # counter dropped: needs two more accesses again
        assert not policy.should_defragment(0, 10, fragments=2)

    def test_note_defragmented_clears_state(self):
        policy = OpportunisticDefrag(DefragConfig(min_accesses=5))
        policy.should_defragment(0, 10, fragments=2)
        assert policy.tracked_ranges == 1
        policy.note_defragmented(0, 10)
        assert policy.tracked_ranges == 0


class TestDefragInTranslator:
    def make_fragmented(self, defrag=None):
        t = LogStructuredTranslator(frontier_base=1000, defrag=defrag)
        t.submit(IORequest.write(4, 2))
        t.submit(IORequest.write(8, 2))
        return t

    def test_fragmented_read_triggers_rewrite(self):
        t = self.make_fragmented(OpportunisticDefrag())
        before = t.frontier
        outcome = t.submit(IORequest.read(0, 12))
        assert outcome.defrag_rewritten_sectors == 12
        assert t.frontier == before + 12

    def test_reread_is_contiguous_after_defrag(self):
        t = self.make_fragmented(OpportunisticDefrag())
        t.submit(IORequest.read(0, 12))
        outcome = t.submit(IORequest.read(0, 12))
        assert outcome.fragments == 1
        assert outcome.read_seeks <= 1

    def test_defrag_seek_charged_as_write_direction(self):
        t = self.make_fragmented(OpportunisticDefrag())
        t.submit(IORequest.read(500, 8))   # move head away from frontier
        outcome = t.submit(IORequest.read(0, 12))
        assert outcome.defrag_write_seeks == 1
        rewrite = outcome.accesses[-1]
        assert rewrite.defrag and rewrite.seek

    def test_no_defrag_without_policy(self):
        t = self.make_fragmented(defrag=None)
        before = t.frontier
        outcome = t.submit(IORequest.read(0, 12))
        assert outcome.defrag_rewritten_sectors == 0
        assert t.frontier == before

    def test_adjacent_read_pays_relocation_seek(self):
        # Fig. 6 t_F: defrag moves data; a read overlapping the moved range
        # and its old neighbourhood now fragments.
        t = self.make_fragmented(OpportunisticDefrag())
        t.submit(IORequest.read(4, 8))       # defrags LBAs 4..12
        outcome = t.submit(IORequest.read(0, 8))  # LBAs 0..8: identity + copy
        assert outcome.fragments == 2
