"""Time-amplification (TAF) metric tests."""

import math

from repro.core.metrics import time_amplification
from repro.disk.geometry import DiskGeometry
from repro.disk.seek_time import SeekTimeModel


def model():
    return SeekTimeModel(geometry=DiskGeometry())


class TestTimeAmplification:
    def test_identity(self):
        distances = [10_000, -10_000, 5_000_000]
        assert time_amplification(distances, distances, model()) == 1.0

    def test_zero_over_zero(self):
        assert time_amplification([], [], model()) == 1.0
        assert time_amplification([0, 0], [0], model()) == 1.0

    def test_inf_when_baseline_free(self):
        assert math.isinf(time_amplification([10_000_000], [], model()))

    def test_default_model(self):
        assert time_amplification([1000], [1000]) == 1.0

    def test_missed_rotations_cost_more_than_count_suggests(self):
        # Equal seek *counts*, but the translated replay's seeks are
        # short backward hops (missed rotations) while the baseline's are
        # short forward skips: TAF far exceeds the SAF of 1.0.
        m = model()
        translated = [-8] * 100
        baseline = [8] * 100
        taf = time_amplification(translated, baseline, m)
        assert taf > 10.0

    def test_long_seeks_dominated_by_head_travel(self):
        m = model()
        track = m.geometry.track_sectors
        taf = time_amplification([track * 1000] * 10, [track * 10] * 10, m)
        assert 1.0 < taf < 10.0
