"""Multi-frontier (WOLF-style) translator tests."""

import pytest

from repro.core.multifrontier import MultiFrontierTranslator, RecencyClassifier
from repro.trace.record import IORequest
from repro.util.units import mib_to_sectors

BASE = mib_to_sectors(8)
REGION = mib_to_sectors(16)


def make_translator(**kwargs):
    return MultiFrontierTranslator(frontier_base=BASE, region_sectors=REGION, **kwargs)


class TestRecencyClassifier:
    def test_first_touch_is_cold(self):
        c = RecencyClassifier(window=16)
        assert not c.classify_and_note(0, 8)

    def test_retouch_is_hot(self):
        c = RecencyClassifier(window=16)
        c.classify_and_note(0, 8)
        assert c.classify_and_note(0, 8)

    def test_window_eviction(self):
        c = RecencyClassifier(window=2)
        c.classify_and_note(0, 8)
        c.classify_and_note(8, 8)
        c.classify_and_note(16, 8)   # evicts block of lba 0
        assert not c.classify_and_note(0, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecencyClassifier(window=0)
        with pytest.raises(ValueError):
            RecencyClassifier(block_sectors=0)


class TestFrontierPlacement:
    def test_cold_writes_go_to_cold_region(self):
        t = make_translator()
        outcome = t.submit(IORequest.write(0, 8))
        assert BASE <= outcome.accesses[0].pba < BASE + REGION
        assert t.cold_writes == 1

    def test_hot_rewrite_goes_to_hot_region(self):
        t = make_translator()
        t.submit(IORequest.write(0, 8))
        outcome = t.submit(IORequest.write(0, 8))
        assert outcome.accesses[0].pba >= BASE + REGION
        assert t.hot_writes == 1

    def test_switch_counted_and_seeks(self):
        t = make_translator()
        t.submit(IORequest.write(0, 8))    # cold
        t.submit(IORequest.write(0, 8))    # hot: switch, seek
        t.submit(IORequest.write(0, 8))    # hot again: no switch, no seek
        assert t.frontier_switches == 1

    def test_switching_costs_write_seeks(self):
        # Alternating cold/hot writes seek on every switch; a single
        # frontier would have had none.
        t = make_translator()
        t.submit(IORequest.write(0, 8))
        seeks = 0
        for i in range(1, 20):
            lba = 0 if i % 2 == 0 else i * 80
            seeks += t.submit(IORequest.write(lba, 8)).write_seeks
        assert seeks >= t.frontier_switches > 5

    def test_reads_resolve_across_regions(self):
        t = make_translator()
        t.submit(IORequest.write(0, 8))      # cold
        t.submit(IORequest.write(8, 8))      # cold
        t.submit(IORequest.write(8, 8))      # hot rewrite
        outcome = t.submit(IORequest.read(0, 16))
        assert outcome.fragments == 2
        pbas = sorted(a.pba for a in outcome.accesses)
        assert pbas[0] < BASE + REGION <= pbas[1]

    def test_region_exhaustion_raises(self):
        t = MultiFrontierTranslator(frontier_base=BASE, region_sectors=16)
        t.submit(IORequest.write(0, 16))
        with pytest.raises(ValueError, match="cold log region exhausted"):
            t.submit(IORequest.write(100, 8))

    def test_read_crossing_base_rejected(self):
        t = make_translator()
        with pytest.raises(ValueError, match="crosses the log base"):
            t.submit(IORequest.read(BASE - 4, 8))

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiFrontierTranslator(frontier_base=-1, region_sectors=8)
        with pytest.raises(ValueError):
            MultiFrontierTranslator(frontier_base=0, region_sectors=0)

    def test_description(self):
        assert make_translator().description == "LS+multifrontier"
