"""Look-ahead-behind prefetching tests (Algorithm 2)."""

import pytest

from repro.core.prefetch import LookAheadBehindPrefetcher, PrefetchConfig
from repro.core.translators import LogStructuredTranslator
from repro.trace.record import IORequest


def small_prefetcher(behind_kib=4.0, ahead_kib=4.0):
    return LookAheadBehindPrefetcher(
        PrefetchConfig(behind_kib=behind_kib, ahead_kib=ahead_kib, buffer_mib=1.0)
    )


class TestPrefetchConfig:
    def test_defaults_match_paper_horizon(self):
        config = PrefetchConfig()
        assert config.behind_kib == 256.0
        assert config.ahead_kib == 256.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            PrefetchConfig(behind_kib=-1)
        with pytest.raises(ValueError):
            PrefetchConfig(behind_kib=0, ahead_kib=0)
        with pytest.raises(ValueError):
            PrefetchConfig(buffer_mib=0)


class TestWindowBookkeeping:
    def test_window_spans_behind_and_ahead(self):
        pf = small_prefetcher()
        pf.note_fragment_read(1000, 8)
        assert pf.covers(1000 - pf.behind_sectors, 4)
        assert pf.covers(1008 + pf.ahead_sectors - 4, 4)
        assert not pf.covers(1008 + pf.ahead_sectors, 1)

    def test_sector_conversion(self):
        pf = small_prefetcher(behind_kib=4.0, ahead_kib=8.0)
        assert pf.behind_sectors == 8
        assert pf.ahead_sectors == 16

    def test_clear(self):
        pf = small_prefetcher()
        pf.note_fragment_read(1000, 8)
        pf.clear()
        assert not pf.covers(1000, 8)

    def test_window_reads_counter(self):
        pf = small_prefetcher()
        pf.note_fragment_read(0, 8)
        pf.note_fragment_read(100, 8)
        assert pf.window_reads == 2


class TestPrefetchInTranslator:
    def make_translator(self, prefetch=True):
        return LogStructuredTranslator(
            frontier_base=1000,
            prefetcher=small_prefetcher() if prefetch else None,
        )

    def test_misordered_writes_prefetched_on_readback(self):
        # Writes land in the log in reverse LBA order; an ordered read of
        # the range hits the look-behind window for both later pieces (the
        # window around the first piece spans the whole three-piece run
        # when behind covers two pieces).
        t = LogStructuredTranslator(
            frontier_base=1000,
            prefetcher=LookAheadBehindPrefetcher(
                PrefetchConfig(behind_kib=8.0, ahead_kib=8.0, buffer_mib=1.0)
            ),
        )
        for lba in (16, 8, 0):
            t.submit(IORequest.write(lba, 8))
        outcome = t.submit(IORequest.read(0, 24))
        assert outcome.fragments == 3
        assert outcome.buffer_fragment_hits == 2
        assert outcome.read_seeks == 1

    def test_without_prefetch_same_read_seeks_per_fragment(self):
        t = self.make_translator(prefetch=False)
        for lba in (16, 8, 0):
            t.submit(IORequest.write(lba, 8))
        outcome = t.submit(IORequest.read(0, 24))
        assert outcome.read_seeks == 3

    def test_unfragmented_reads_bypass_buffer(self):
        # Algorithm 2 guards on FragmentedRead: plain reads are served
        # directly and do not populate the buffer.
        t = self.make_translator()
        t.submit(IORequest.write(0, 8))
        t.submit(IORequest.read(0, 8))       # single fragment
        assert t.prefetcher.window_reads == 0

    def test_buffer_hits_do_not_move_head(self):
        t = self.make_translator()
        for lba in (16, 8, 0):
            t.submit(IORequest.write(lba, 8))
        t.submit(IORequest.read(0, 24))
        # Head ended at the last disk access (the LBA-16 piece at the log
        # start); a write then appends at the frontier and must seek.
        outcome = t.submit(IORequest.write(100, 8))
        assert outcome.write_seeks == 1

    def test_distant_fragments_not_covered(self):
        t = self.make_translator()
        t.submit(IORequest.write(0, 8))
        # Push the frontier far beyond the window.
        for i in range(20):
            t.submit(IORequest.write(200 + i * 8, 8))
        t.submit(IORequest.write(8, 8))
        outcome = t.submit(IORequest.read(0, 16))
        assert outcome.fragments == 2
        assert outcome.buffer_fragment_hits == 0
        assert outcome.read_seeks == 2
