"""Technique-composition tests: defrag + prefetch + cache interplay."""

from repro.core.defrag import OpportunisticDefrag
from repro.core.prefetch import LookAheadBehindPrefetcher, PrefetchConfig
from repro.core.selective_cache import SelectiveCacheConfig, SelectiveFragmentCache
from repro.core.translators import LogStructuredTranslator
from repro.trace.record import IORequest


def make_translator(defrag=False, prefetch=False, cache=False):
    return LogStructuredTranslator(
        frontier_base=10_000,
        defrag=OpportunisticDefrag() if defrag else None,
        prefetcher=(
            LookAheadBehindPrefetcher(
                PrefetchConfig(behind_kib=8.0, ahead_kib=8.0, buffer_mib=1.0)
            )
            if prefetch
            else None
        ),
        cache=(
            SelectiveFragmentCache(SelectiveCacheConfig(capacity_mib=1.0))
            if cache
            else None
        ),
    )


def fragment(translator):
    translator.submit(IORequest.write(4, 2))
    translator.submit(IORequest.write(8, 2))


class TestDefragWithCache:
    def test_defrag_converges_so_cache_stops_admitting(self):
        t = make_translator(defrag=True, cache=True)
        fragment(t)
        t.submit(IORequest.read(0, 12))          # fragmented: admit + defrag
        second = t.submit(IORequest.read(0, 12))  # defragged: unfragmented
        assert second.fragments == 1
        assert second.cache_fragment_hits == 0   # bypasses the cache entirely

    def test_cache_hit_prevents_disk_reads_but_not_defrag(self):
        # Fully cached fragmented reads still trigger the rewrite: the
        # policy acts on fragmentation, not on medium served.
        t = make_translator(defrag=False, cache=True)
        fragment(t)
        t.submit(IORequest.read(0, 12))
        cached = t.submit(IORequest.read(0, 12))
        assert cached.cache_fragment_hits == cached.fragments
        assert cached.read_seeks == 0

    def test_stale_cache_after_defrag_is_harmless(self):
        t = make_translator(defrag=True, cache=True)
        fragment(t)
        t.submit(IORequest.read(0, 12))
        # Overwrite part of the defragged copy; the read must follow the
        # map to the newest PBAs, missing any stale blocks.
        t.submit(IORequest.write(4, 2))
        outcome = t.submit(IORequest.read(0, 12))
        newest = max(a.pba for a in outcome.accesses if not a.defrag)
        assert newest >= t.frontier - 14


class TestDefragWithPrefetch:
    def test_buffer_hits_do_not_stop_defrag(self):
        t = make_translator(defrag=True, prefetch=True)
        fragment(t)
        first = t.submit(IORequest.read(0, 12))
        assert first.defrag_rewritten_sectors == 12

    def test_post_defrag_reads_skip_prefetcher(self):
        t = make_translator(defrag=True, prefetch=True)
        fragment(t)
        t.submit(IORequest.read(0, 12))
        windows_before = t.prefetcher.window_reads
        second = t.submit(IORequest.read(0, 12))
        assert second.fragments == 1
        assert t.prefetcher.window_reads == windows_before


class TestAllThree:
    def test_composed_serves_correct_data_with_fewer_seeks(self):
        plain = make_translator()
        composed = make_translator(defrag=True, prefetch=True, cache=True)
        ops = [
            IORequest.write(4, 2),
            IORequest.write(8, 2),
            IORequest.write(20, 4),
            IORequest.read(0, 12),
            IORequest.read(16, 12),
            IORequest.read(0, 12),
            IORequest.read(16, 12),
        ]
        plain_seeks = sum(plain.submit(op).total_seeks for op in ops)
        composed_seeks = sum(composed.submit(op).total_seeks for op in ops)
        assert composed_seeks <= plain_seeks
        # Both must resolve the same logical mapping at the end.
        for lba in (4, 8, 20):
            a = plain.address_map.lookup(lba, 2)
            b = composed.address_map.lookup(lba, 2)
            assert [s.is_hole for s in a] == [s.is_hole for s in b]

    def test_description_lists_all(self):
        t = make_translator(defrag=True, prefetch=True, cache=True)
        assert t.description == "LS+defrag+prefetch+cache"
