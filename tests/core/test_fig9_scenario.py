"""Paper Fig. 9 worked example, asserted exactly.

LBAs 3, 2 and 4 are updated out of order; a read of LBAs 1..5 pays five
seeks plain, three with look-ahead-behind prefetching (LBAs 3 and 4 come
from the buffer while reading LBA 2).
"""

from repro.core.prefetch import LookAheadBehindPrefetcher, PrefetchConfig
from repro.core.translators import LogStructuredTranslator
from repro.trace.record import IORequest

UNIT = 8


def make_translator(prefetch: bool) -> LogStructuredTranslator:
    prefetcher = None
    if prefetch:
        prefetcher = LookAheadBehindPrefetcher(
            PrefetchConfig(behind_kib=4.0, ahead_kib=4.0, buffer_mib=1.0)
        )
    return LogStructuredTranslator(frontier_base=16 * UNIT, prefetcher=prefetcher)


def run_scenario(prefetch: bool):
    t = make_translator(prefetch)
    for unit in (3, 2, 4):  # tA, tB, tC
        t.submit(IORequest.write(unit * UNIT, UNIT))
    return t.submit(IORequest.read(1 * UNIT, 5 * UNIT))  # tD


class TestFig9:
    def test_without_prefetch_five_seeks(self):
        outcome = run_scenario(prefetch=False)
        assert outcome.fragments == 5
        assert outcome.read_seeks == 5

    def test_with_prefetch_three_seeks(self):
        outcome = run_scenario(prefetch=True)
        assert outcome.fragments == 5
        assert outcome.read_seeks == 3
        assert outcome.buffer_fragment_hits == 2

    def test_prefetched_fragments_are_lbas_3_and_4(self):
        outcome = run_scenario(prefetch=True)
        buffered = [a for a in outcome.accesses if a.source.value == "buffer"]
        # LBA 3 was the first log write (pba 16*UNIT), LBA 4 the third.
        assert sorted(a.pba for a in buffered) == [16 * UNIT, 18 * UNIT]

    def test_reread_fully_buffered(self):
        t = make_translator(prefetch=True)
        for unit in (3, 2, 4):
            t.submit(IORequest.write(unit * UNIT, UNIT))
        t.submit(IORequest.read(1 * UNIT, 5 * UNIT))
        again = t.submit(IORequest.read(1 * UNIT, 5 * UNIT))
        assert again.read_seeks == 0
