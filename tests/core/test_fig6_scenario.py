"""Paper Fig. 6 worked example, asserted exactly.

The figure walks a six-LBA log through updates, a fragmented read,
opportunistic defragmentation, a seek-free re-read, and the relocation
penalty on an adjacent read.  These tests pin the simulator to the
figure's seek counts.
"""

from repro.core.defrag import OpportunisticDefrag
from repro.core.translators import LogStructuredTranslator
from repro.trace.record import IORequest

UNIT = 8  # sectors per toy LBA


def unit_write(unit):
    return IORequest.write(unit * UNIT, UNIT)


def unit_read(first, last):
    return IORequest.read(first * UNIT, (last - first + 1) * UNIT)


def make_translator(defrag: bool) -> LogStructuredTranslator:
    return LogStructuredTranslator(
        frontier_base=16 * UNIT,
        defrag=OpportunisticDefrag() if defrag else None,
    )


class TestFig6WithoutDefrag:
    def test_fragmented_read_costs_three_extra_seeks(self):
        # tC: Rd 2-5 over [2, 3', 4, 5'] = 4 fragments, 4 seeks — 3 more
        # than the single seek a contiguous layout would cost.
        t = make_translator(defrag=False)
        t.submit(unit_write(3))
        t.submit(unit_write(5))
        outcome = t.submit(unit_read(2, 5))
        assert outcome.fragments == 4
        assert outcome.read_seeks == 4

    def test_reread_costs_the_same_without_defrag(self):
        t = make_translator(defrag=False)
        t.submit(unit_write(3))
        t.submit(unit_write(5))
        t.submit(unit_read(2, 5))
        assert t.submit(unit_read(2, 5)).read_seeks == 4


class TestFig6WithDefrag:
    def make_after_defrag(self):
        t = make_translator(defrag=True)
        t.submit(unit_write(3))          # tA
        t.submit(unit_write(5))          # tB
        first = t.submit(unit_read(2, 5))  # tC + tD (defrag)
        return t, first

    def test_first_read_triggers_rewrite(self):
        t, first = self.make_after_defrag()
        assert first.defrag_rewritten_sectors == 4 * UNIT

    def test_reread_seek_free_modulo_initial_seek(self):
        # tE: Rd 2-5 again — one contiguous fragment at the log head.
        t, _ = self.make_after_defrag()
        again = t.submit(unit_read(2, 5))
        assert again.fragments == 1
        assert again.read_seeks <= 1

    def test_adjacent_read_pays_relocation_seek(self):
        # tF: Rd 1-2 — LBA 1 still in place, LBA 2 moved to the log head:
        # 2 fragments, 2 seeks where the original layout needed 1.
        t, _ = self.make_after_defrag()
        adjacent = t.submit(unit_read(1, 2))
        assert adjacent.fragments == 2
        assert adjacent.read_seeks == 2
