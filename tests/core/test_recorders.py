"""Recorder tests."""

from repro.core.defrag import OpportunisticDefrag
from repro.core.recorders import (
    FragmentationRecorder,
    OutcomeLogRecorder,
    SeekLogRecorder,
)
from repro.core.simulator import replay
from repro.core.translators import InPlaceTranslator, LogStructuredTranslator
from repro.trace.record import IORequest
from repro.trace.trace import Trace


class TestSeekLogRecorder:
    def test_records_seeks_with_direction(self):
        trace = Trace(
            [
                IORequest.write(0, 8),
                IORequest.read(100, 8),
                IORequest.write(300, 8),
            ]
        )
        recorder = SeekLogRecorder()
        replay(trace, InPlaceTranslator(), [recorder])
        assert len(recorder.records) == 2
        assert recorder.records[0].is_read
        assert not recorder.records[1].is_read
        assert recorder.records[0].distance == 92

    def test_distances_accessors(self):
        trace = Trace([IORequest.read(0, 8), IORequest.read(100, 8)])
        recorder = SeekLogRecorder()
        replay(trace, InPlaceTranslator(), [recorder])
        assert recorder.distances == [92]
        assert recorder.read_distances == [92]

    def test_defrag_rewrite_logged_as_write(self):
        trace = Trace(
            [
                IORequest.write(4, 2),
                IORequest.read(100, 8),   # move head away from frontier
                IORequest.read(0, 10),    # fragmented -> defrag rewrite
            ]
        )
        recorder = SeekLogRecorder()
        replay(
            trace,
            LogStructuredTranslator(frontier_base=1000, defrag=OpportunisticDefrag()),
            [recorder],
        )
        write_records = [r for r in recorder.records if not r.is_read]
        assert write_records  # the defrag rewrite seeked in write direction

    def test_op_index_recorded(self):
        trace = Trace([IORequest.read(0, 8), IORequest.read(100, 8)])
        recorder = SeekLogRecorder()
        replay(trace, InPlaceTranslator(), [recorder])
        assert recorder.records[0].op_index == 1


class TestFragmentationRecorder:
    def test_per_read_fragments(self):
        trace = Trace(
            [
                IORequest.write(4, 2),
                IORequest.read(0, 10),
                IORequest.read(4, 2),
            ]
        )
        recorder = FragmentationRecorder()
        replay(trace, LogStructuredTranslator(frontier_base=1000), [recorder])
        assert recorder.read_fragments == [3, 1]
        assert recorder.fragmented_read_fragments == [3]

    def test_writes_ignored(self):
        trace = Trace([IORequest.write(0, 8)])
        recorder = FragmentationRecorder()
        replay(trace, LogStructuredTranslator(frontier_base=1000), [recorder])
        assert recorder.read_fragments == []


class TestOutcomeLogRecorder:
    def test_keeps_everything(self, tiny_trace):
        recorder = OutcomeLogRecorder()
        replay(tiny_trace, InPlaceTranslator(), [recorder])
        assert [o.request for o in recorder.outcomes] == list(tiny_trace.requests)
