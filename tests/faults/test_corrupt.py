"""Raw-line corruption: determinism and parser interplay."""

from repro.faults import CorruptionLog, CorruptionSpec, corrupt_lines
from repro.trace import parse_cloudphysics_lines

CLEAN = [f"{i * 100},R,{i * 8},8" for i in range(200)]


class TestCorruptLines:
    def test_deterministic_for_seed(self):
        spec = CorruptionSpec(rate=0.1, seed=42)
        assert corrupt_lines(CLEAN, spec) == corrupt_lines(CLEAN, spec)

    def test_different_seeds_differ(self):
        a = corrupt_lines(CLEAN, CorruptionSpec(rate=0.1, seed=1))
        b = corrupt_lines(CLEAN, CorruptionSpec(rate=0.1, seed=2))
        assert a != b

    def test_rate_zero_is_identity(self):
        assert corrupt_lines(CLEAN, CorruptionSpec(rate=0.0)) == CLEAN

    def test_log_matches_damage(self):
        log = CorruptionLog()
        damaged = corrupt_lines(CLEAN, CorruptionSpec(rate=0.2, seed=7), log=log)
        assert log.count > 0
        changed = [i for i, (a, b) in enumerate(zip(CLEAN, damaged)) if a != b]
        assert set(changed) <= set(log.indices)

    def test_input_not_mutated(self):
        snapshot = list(CLEAN)
        corrupt_lines(CLEAN, CorruptionSpec(rate=0.5, seed=3))
        assert CLEAN == snapshot

    def test_invalid_rate_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="probability"):
            CorruptionSpec(rate=5.0)


class TestCorruptionThroughParser:
    def test_lenient_parse_skips_exactly_the_damaged_lines(self):
        log = CorruptionLog()
        damaged = corrupt_lines(CLEAN, CorruptionSpec(rate=0.1, seed=11), log=log)
        trace = parse_cloudphysics_lines(damaged, policy="lenient")
        report = trace.parse_report
        assert report.balanced
        # Every damage kind we emit breaks the record, so the parser must
        # drop exactly the damaged lines and keep the rest.
        assert report.skipped == log.count
        assert report.accepted == len(CLEAN) - log.count

    def test_quarantine_captures_damaged_lines_verbatim(self):
        log = CorruptionLog()
        damaged = corrupt_lines(CLEAN, CorruptionSpec(rate=0.1, seed=11), log=log)
        trace = parse_cloudphysics_lines(damaged, policy="quarantine")
        captured = {issue.line for issue in trace.parse_report.quarantine}
        assert captured == {damaged[i] for i in log.indices}
