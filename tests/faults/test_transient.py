"""Transient read errors, retry policy, and metric determinism."""

import pytest

from repro.core import (
    LS,
    NOLS,
    RetriesExhaustedError,
    RetryPolicy,
    Simulator,
    TransientIOError,
    build_translator,
    replay,
)
from repro.faults import FaultyTranslator, TransientFaultConfig
from repro.trace.record import IORequest
from repro.trace.trace import Trace


def make_trace(n=300):
    ops = []
    for i in range(n):
        if i % 3 == 0:
            ops.append(IORequest.write(i * 8, 8, i * 0.001))
        else:
            ops.append(IORequest.read((i % 50) * 8, 8, i * 0.001))
    return Trace(ops, name="mixed")


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_delay_s=0.5, multiplier=2.0)
        assert [policy.delay_for(a) for a in range(3)] == [0.5, 1.0, 2.0]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.0)


class TestFaultyTranslator:
    def test_wrapper_is_transparent_when_rate_zero(self):
        trace = make_trace()
        clean = replay(trace, build_translator(trace, LS))
        wrapped = FaultyTranslator(
            build_translator(trace, LS), TransientFaultConfig(read_error_rate=0.0)
        )
        faulty = replay(trace, wrapped)
        assert faulty.stats == clean.stats
        assert faulty.translator == "LS+faulty"

    def test_faults_propagate_without_retry_policy(self):
        trace = make_trace()
        wrapped = FaultyTranslator(
            build_translator(trace, LS),
            TransientFaultConfig(read_error_rate=1.0, seed=0),
        )
        with pytest.raises(TransientIOError):
            replay(trace, wrapped)

    def test_seek_metrics_deterministic_and_unperturbed(self):
        """The acceptance invariant: for any fixed fault seed the retried
        replay's seek/SAF accounting equals the fault-free replay's."""
        trace = make_trace()
        clean = replay(trace, build_translator(trace, LS))
        for seed in (0, 7, 123):
            wrapped = FaultyTranslator(
                build_translator(trace, LS),
                TransientFaultConfig(read_error_rate=0.2, seed=seed),
            )
            result = replay(trace, wrapped, retry_policy=RetryPolicy())
            assert result.stats.seek_counters == clean.stats.seek_counters
            assert result.stats.transient_errors == wrapped.injected_faults
            assert result.stats.transient_errors > 0

    def test_identical_seed_identical_run(self):
        trace = make_trace()

        def run(seed):
            wrapped = FaultyTranslator(
                build_translator(trace, LS),
                TransientFaultConfig(read_error_rate=0.3, seed=seed),
            )
            result = replay(trace, wrapped, retry_policy=RetryPolicy())
            return (
                result.stats.transient_errors,
                result.stats.retried_ops,
                result.stats.retry_backoff_s,
            )

        assert run(99) == run(99)
        assert run(99) != run(100)

    def test_saf_unchanged_under_faults(self):
        from repro.core import seek_amplification

        trace = make_trace()
        base = replay(trace, build_translator(trace, NOLS))
        clean = replay(trace, build_translator(trace, LS))
        wrapped = FaultyTranslator(
            build_translator(trace, LS),
            TransientFaultConfig(read_error_rate=0.15, seed=5),
        )
        faulty = replay(trace, wrapped, retry_policy=RetryPolicy())
        assert (
            seek_amplification(faulty.stats, base.stats).read
            == seek_amplification(clean.stats, base.stats).read
        )

    def test_retries_exhausted_surfaces(self):
        trace = make_trace()
        wrapped = FaultyTranslator(
            build_translator(trace, LS),
            TransientFaultConfig(read_error_rate=1.0, seed=0, max_consecutive=10),
        )
        with pytest.raises(RetriesExhaustedError, match="failed after 3 attempts"):
            Simulator(retry_policy=RetryPolicy(max_retries=2)).run(trace, wrapped)

    def test_forward_progress_capped_by_max_consecutive(self):
        """max_consecutive below the retry budget guarantees completion
        even at a 100% error rate."""
        trace = make_trace(60)
        wrapped = FaultyTranslator(
            build_translator(trace, LS),
            TransientFaultConfig(read_error_rate=1.0, seed=0, max_consecutive=2),
        )
        result = replay(trace, wrapped, retry_policy=RetryPolicy(max_retries=4))
        assert result.stats.ops == len(trace)
        reads = sum(1 for r in trace if r.is_read)
        assert result.stats.transient_errors == 2 * reads

    def test_backoff_accounting(self):
        trace = Trace([IORequest.write(0, 8), IORequest.read(0, 8)], name="two")
        wrapped = FaultyTranslator(
            build_translator(trace, LS),
            TransientFaultConfig(read_error_rate=1.0, seed=0, max_consecutive=2),
        )
        policy = RetryPolicy(max_retries=4, base_delay_s=1.0, multiplier=10.0)
        result = replay(trace, wrapped, retry_policy=policy)
        # The single read faults twice: backoff 1.0 + 10.0 simulated seconds.
        assert result.stats.retry_backoff_s == pytest.approx(11.0)
        assert result.stats.retried_ops == 1
