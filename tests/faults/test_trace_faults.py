"""Trace-level fault models: drop/duplicate/swap/truncate."""

import pytest

from repro.faults import TraceFaultConfig, TraceFaultLog, inject_trace_faults
from repro.trace.record import IORequest
from repro.trace.trace import Trace


def make_trace(n=500):
    return Trace(
        [IORequest.read(i * 8, 8, i * 0.001) for i in range(n)], name="synthetic"
    )


class TestInjectTraceFaults:
    def test_no_faults_is_identity(self):
        trace = make_trace()
        faulty = inject_trace_faults(trace, TraceFaultConfig())
        assert list(faulty) == list(trace)
        assert faulty.name == "synthetic+faults"

    def test_deterministic_for_seed(self):
        trace = make_trace()
        config = TraceFaultConfig(drop_rate=0.1, duplicate_rate=0.1, swap_rate=0.1, seed=9)
        assert list(inject_trace_faults(trace, config)) == list(
            inject_trace_faults(trace, config)
        )

    def test_input_trace_untouched(self):
        trace = make_trace()
        before = list(trace)
        inject_trace_faults(
            trace, TraceFaultConfig(drop_rate=0.5, duplicate_rate=0.5, seed=1)
        )
        assert list(trace) == before

    def test_log_accounts_for_length_change(self):
        trace = make_trace()
        log = TraceFaultLog()
        faulty = inject_trace_faults(
            trace,
            TraceFaultConfig(
                drop_rate=0.1, duplicate_rate=0.1, truncate_fraction=0.2, seed=3
            ),
            log=log,
        )
        assert log.input_ops == len(trace)
        assert log.output_ops == len(faulty)
        assert log.truncated == int(len(trace) * 0.2)
        assert (
            log.output_ops
            == log.input_ops - log.truncated - log.dropped + log.duplicated
        )

    def test_truncate_cuts_the_tail(self):
        trace = make_trace(100)
        faulty = inject_trace_faults(trace, TraceFaultConfig(truncate_fraction=0.25))
        assert list(faulty) == list(trace)[:75]

    def test_swap_preserves_multiset(self):
        trace = make_trace(200)
        faulty = inject_trace_faults(trace, TraceFaultConfig(swap_rate=0.3, seed=5))
        assert sorted(r.lba for r in faulty) == sorted(r.lba for r in trace)
        assert list(faulty) != list(trace)

    def test_duplicates_are_adjacent(self):
        trace = make_trace(100)
        log = TraceFaultLog()
        faulty = inject_trace_faults(
            trace, TraceFaultConfig(duplicate_rate=0.2, seed=2), log=log
        )
        assert log.duplicated > 0
        requests = list(faulty)
        adjacent_pairs = sum(
            1 for a, b in zip(requests, requests[1:]) if a is b
        )
        assert adjacent_pairs == log.duplicated

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            TraceFaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError, match="truncate_fraction"):
            TraceFaultConfig(truncate_fraction=2.0)


class TestReplayUnderTraceFaults:
    def test_techniques_survive_faulty_traces(self):
        """Every technique must replay a damaged trace without blowing up."""
        from repro.core import ALL_CONFIGS, build_translator, replay
        from repro import synthesize_workload

        trace = synthesize_workload("w91", seed=3, scale=0.05)
        faulty = inject_trace_faults(
            trace,
            TraceFaultConfig(
                drop_rate=0.05, duplicate_rate=0.05, swap_rate=0.05,
                truncate_fraction=0.1, seed=13,
            ),
        )
        for config in ALL_CONFIGS:
            result = replay(faulty, build_translator(faulty, config))
            assert result.stats.ops == len(faulty)
