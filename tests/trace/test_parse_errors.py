"""Malformed-input handling across all three parsers (error policies)."""

import pytest

from repro.trace import (
    ParseReport,
    TraceParseError,
    parse_cloudphysics_lines,
    parse_msr_lines,
    read_csv_trace,
)

# A dirty MSR dump: 4 good records and 5 broken ones of distinct kinds.
MSR_GOOD = [
    "128166372003061629,hm,1,Read,2048,4096,1221",
    "128166372013061629,hm,1,Write,512,512,900",
    "128166372023061629,hm,1,Read,0,4096,800",
    "128166372033061629,hm,1,Read,10240,1536,700",
]
MSR_BAD = [
    "1,2,3",                                        # too few fields
    "128166372,hm,1,Read,banana,4096,100",          # non-numeric offset
    "128166372,hm,1,Read,0,0,100",                  # zero size
    "128166372,hm,1,Read,0,-512,100",               # negative size
    "128166372043061629,hm,1,Wri",                  # truncated final line
]

CP_GOOD = ["100,R,0,8", "200,W,64,8", "300,R,64,8"]
CP_BAD = [
    "400,R,8",            # too few fields
    "xyz,R,0,8",          # non-numeric timestamp
    "500,R,0,0",          # zero length
    "600,R,0,-8",         # negative length
]


class TestStrictPolicy:
    @pytest.mark.parametrize("bad", MSR_BAD)
    def test_msr_raises_on_each_defect(self, bad):
        with pytest.raises(TraceParseError) as info:
            parse_msr_lines(MSR_GOOD + [bad], name="dirty")
        assert info.value.line_no == len(MSR_GOOD) + 1
        assert "dirty" in str(info.value)

    @pytest.mark.parametrize("bad", CP_BAD)
    def test_cloudphysics_raises_on_each_defect(self, bad):
        with pytest.raises(TraceParseError):
            parse_cloudphysics_lines(CP_GOOD + [bad])

    def test_strict_is_the_default(self):
        with pytest.raises(TraceParseError):
            parse_msr_lines(MSR_BAD[:1])

    def test_error_carries_raw_line(self):
        with pytest.raises(TraceParseError) as info:
            parse_msr_lines(["garbage,line"])
        assert info.value.line == "garbage,line"


class TestLenientPolicy:
    def test_msr_skips_and_accounts(self):
        lines = MSR_GOOD + MSR_BAD
        trace = parse_msr_lines(lines, policy="lenient")
        report = trace.parse_report
        assert len(trace) == len(MSR_GOOD)
        assert report.records == len(lines)
        assert report.accepted == len(MSR_GOOD)
        assert report.skipped == len(MSR_BAD)
        assert report.quarantined == 0
        assert report.balanced
        assert (
            report.records
            == report.accepted + report.skipped + report.quarantined + report.filtered
        )

    def test_cloudphysics_skips_and_accounts(self):
        trace = parse_cloudphysics_lines(CP_GOOD + CP_BAD, policy="lenient")
        report = trace.parse_report
        assert len(trace) == len(CP_GOOD)
        assert report.skipped == len(CP_BAD)
        assert report.balanced

    def test_error_samples_capture_reasons(self):
        trace = parse_msr_lines(MSR_BAD, policy="lenient")
        reasons = " ".join(issue.reason for issue in trace.parse_report.errors)
        assert "expected >=6" in reasons
        assert "size must be > 0" in reasons

    def test_error_samples_are_bounded(self):
        lines = ["1,2,3"] * 50
        trace = parse_msr_lines(lines, policy="lenient")
        report = trace.parse_report
        assert report.skipped == 50
        assert len(report.errors) == report.max_error_samples

    def test_heavily_corrupt_trace_parses(self):
        # >= 5% malformed (here 5/9) must not raise and must balance.
        lines = MSR_GOOD + MSR_BAD
        assert len(MSR_BAD) / len(lines) >= 0.05
        trace = parse_msr_lines(lines, policy="lenient")
        assert trace.parse_report.balanced
        assert len(trace) == trace.parse_report.accepted

    def test_disk_filter_counts_as_filtered_not_error(self):
        lines = MSR_GOOD + ["128166372003061629,hm,9,Read,0,4096,1"]
        trace = parse_msr_lines(lines, disk_number=1, policy="lenient")
        report = trace.parse_report
        assert report.filtered == 1
        assert report.skipped == 0
        assert report.balanced


class TestQuarantinePolicy:
    def test_quarantine_captures_raw_lines(self):
        lines = MSR_GOOD + MSR_BAD
        trace = parse_msr_lines(lines, policy="quarantine")
        report = trace.parse_report
        assert report.quarantined == len(MSR_BAD)
        assert report.skipped == 0
        assert [issue.line for issue in report.quarantine] == MSR_BAD
        assert report.balanced

    def test_quarantined_lines_carry_line_numbers(self):
        trace = parse_cloudphysics_lines(CP_GOOD + CP_BAD, policy="quarantine")
        line_nos = [issue.line_no for issue in trace.parse_report.quarantine]
        assert line_nos == [4, 5, 6, 7]


class TestGeometryValidation:
    def test_msr_out_of_range_record(self):
        # Offset 1 MiB on a 1024-sector (512 KiB) disk.
        line = "1,hm,1,Read,1048576,4096,1"
        with pytest.raises(TraceParseError, match="exceeds disk capacity"):
            parse_msr_lines([line], capacity_sectors=1024)
        trace = parse_msr_lines([line], capacity_sectors=1024, policy="lenient")
        assert len(trace) == 0
        assert trace.parse_report.skipped == 1

    def test_cloudphysics_range_straddling_capacity(self):
        trace = parse_cloudphysics_lines(
            ["1,R,1020,8"], capacity_sectors=1024, policy="lenient"
        )
        assert trace.parse_report.skipped == 1

    def test_in_range_records_pass(self):
        trace = parse_cloudphysics_lines(["1,R,1016,8"], capacity_sectors=1024)
        assert len(trace) == 1


class TestCsvTraceReader:
    def _write(self, tmp_path, rows):
        path = tmp_path / "t.csv"
        path.write_text("timestamp,op,lba,length\n" + "\n".join(rows) + "\n")
        return path

    def test_strict_raises(self, tmp_path):
        path = self._write(tmp_path, ["0.0,R,0,8", "0.1,R,zero,8"])
        with pytest.raises(TraceParseError, match="bad trace row"):
            read_csv_trace(path)

    def test_lenient_report(self, tmp_path):
        path = self._write(
            tmp_path, ["0.0,R,0,8", "0.1,R,zero,8", "0.2,W,8,0", "0.3,W"]
        )
        trace = read_csv_trace(path, policy="lenient")
        report = trace.parse_report
        assert len(trace) == 1
        assert report.records == 4
        assert report.skipped == 3
        assert report.balanced

    def test_capacity_check(self, tmp_path):
        path = self._write(tmp_path, ["0.0,R,2000,8"])
        trace = read_csv_trace(path, policy="lenient", capacity_sectors=1024)
        assert len(trace) == 0
        assert trace.parse_report.skipped == 1


class TestSharedReport:
    def test_aggregate_report_across_files(self):
        report = ParseReport(name="combined", policy="lenient")
        parse_msr_lines(MSR_GOOD + MSR_BAD[:2], policy="lenient", report=report)
        parse_msr_lines(MSR_GOOD, policy="lenient", report=report)
        assert report.accepted == 2 * len(MSR_GOOD)
        assert report.skipped == 2
        assert report.balanced

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            parse_msr_lines(MSR_GOOD, policy="permissive")

    def test_summary_is_json_friendly(self):
        import json

        trace = parse_msr_lines(MSR_GOOD + MSR_BAD, policy="quarantine")
        summary = trace.parse_report.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["quarantined"] == len(MSR_BAD)

    def test_synthetic_traces_have_no_report(self):
        from repro.trace import Trace

        assert Trace([]).parse_report is None
