"""ColumnarTrace semantics: laziness, views, and read-only columns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.columnar import ColumnarTrace, TraceColumns, parse_csv_text
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace

CSV = "\n".join(
    f"{i * 0.001},{'read' if i % 2 else 'write'},{i * 8},{4 + i % 8}"
    for i in range(20)
)


@pytest.fixture
def columnar():
    trace = parse_csv_text(CSV, name="cols")
    assert isinstance(trace, ColumnarTrace)
    return trace


@pytest.fixture
def reference():
    return Trace(
        [
            IORequest(
                i * 0.001,
                OpType.READ if i % 2 else OpType.WRITE,
                i * 8,
                4 + i % 8,
            )
            for i in range(20)
        ],
        name="cols",
    )


class TestLaziness:
    def test_vectorized_consumers_never_materialize(self, columnar, reference):
        assert not columnar.materialized
        assert len(columnar) == len(reference)
        assert columnar.read_count == reference.read_count
        assert columnar.write_count == reference.write_count
        assert columnar.max_end == reference.max_end
        is_read, lba, length = columnar.as_arrays()
        ref_read, ref_lba, ref_length = reference.as_arrays()
        assert np.array_equal(is_read, ref_read)
        assert np.array_equal(lba, ref_lba)
        assert np.array_equal(length, ref_length)
        assert np.array_equal(columnar.timestamps(), reference.timestamps())
        assert "n_ops=20" in repr(columnar)
        assert not columnar.materialized

    def test_scalar_indexing_stays_lazy(self, columnar, reference):
        assert columnar[3] == reference[3]
        assert columnar[-1] == reference[-1]
        assert not columnar.materialized

    def test_iteration_materializes_reference_requests(self, columnar, reference):
        assert list(columnar) == list(reference)
        assert columnar.materialized
        assert columnar.requests == reference.requests


class TestViews:
    def test_slicing_returns_columnar(self, columnar, reference):
        sliced = columnar[5:15]
        assert isinstance(sliced, ColumnarTrace)
        assert list(sliced) == list(reference[5:15])

    def test_filter_returns_columnar(self, columnar, reference):
        reads = columnar.filter(OpType.READ)
        writes = columnar.filter(OpType.WRITE)
        assert isinstance(reads, ColumnarTrace)
        assert list(reads) == list(reference.filter(OpType.READ))
        assert list(writes) == list(reference.filter(OpType.WRITE))

    def test_renamed_shares_columns_and_materialization(self, columnar):
        materialized = list(columnar)
        renamed = columnar.renamed("other")
        assert renamed.name == "other"
        assert renamed.materialized  # reuses the already-built request list
        assert list(renamed) == materialized

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            TraceColumns(
                np.zeros(2), np.zeros(3, bool), np.zeros(2, np.int64),
                np.zeros(2, np.int64),
            )


class TestReadOnlyArrays:
    """Regression: the cached columns are shared views — a consumer
    scribbling on them would corrupt every later analysis."""

    @pytest.mark.parametrize("kind", ["reference", "columnar"])
    def test_as_arrays_mutation_raises(self, kind, columnar, reference):
        trace = columnar if kind == "columnar" else reference
        for array in trace.as_arrays():
            with pytest.raises(ValueError):
                array[0] = 1

    @pytest.mark.parametrize("kind", ["reference", "columnar"])
    def test_timestamps_mutation_raises(self, kind, columnar, reference):
        trace = columnar if kind == "columnar" else reference
        with pytest.raises(ValueError):
            trace.timestamps()[0] = 99.0

    def test_trace_columns_are_read_only(self, columnar):
        cols = columnar.columns
        for array in (cols.timestamp, cols.is_read, cols.lba, cols.length):
            with pytest.raises(ValueError):
                array[0] = 1
