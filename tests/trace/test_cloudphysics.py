"""CloudPhysics-style parser tests."""

import pytest

from repro.trace.cloudphysics import parse_cloudphysics_file, parse_cloudphysics_lines

CP_SAMPLE = [
    "timestamp_us,op,lba,length",
    "1000000,R,2048,8",
    "2000000,W,0,16",
    "2500000,w,128,8,450",  # extra latency column tolerated
]


class TestParseCloudphysicsLines:
    def test_parses_with_header(self):
        trace = parse_cloudphysics_lines(CP_SAMPLE, name="w91")
        assert len(trace) == 3
        assert trace[0].is_read and trace[0].lba == 2048

    def test_timestamp_rebase_microseconds(self):
        trace = parse_cloudphysics_lines(CP_SAMPLE)
        assert trace[0].timestamp == 0.0
        assert abs(trace[1].timestamp - 1.0) < 1e-9

    def test_max_ops(self):
        assert len(parse_cloudphysics_lines(CP_SAMPLE, max_ops=1)) == 1

    def test_zero_length_is_malformed(self):
        lines = ["1,R,0,0", "2,R,0,4"]
        with pytest.raises(ValueError, match="length must be > 0"):
            parse_cloudphysics_lines(lines)
        assert len(parse_cloudphysics_lines(lines, policy="lenient")) == 1

    def test_bad_record(self):
        with pytest.raises(ValueError, match="bad CloudPhysics record"):
            parse_cloudphysics_lines(["abc,R,x,8"])

    def test_too_few_fields(self):
        with pytest.raises(ValueError, match="expected >=4"):
            parse_cloudphysics_lines(["1,R,2"])


class TestParseCloudphysicsFile:
    def test_file_parsing(self, tmp_path):
        path = tmp_path / "w91.csv"
        path.write_text("\n".join(CP_SAMPLE) + "\n")
        trace = parse_cloudphysics_file(path)
        assert trace.name == "w91"
        assert len(trace) == 3
