"""Trace sampling/windowing tests."""

import pytest

from repro.trace.sampling import (
    head_sample,
    op_index_buckets,
    op_window,
    split_by_op,
    stride_sample,
    time_window,
)


class TestHeadSample:
    def test_takes_prefix(self, tiny_trace):
        assert [r.lba for r in head_sample(tiny_trace, 2)] == [0, 16]

    def test_longer_than_trace(self, tiny_trace):
        assert len(head_sample(tiny_trace, 100)) == 6

    def test_negative_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            head_sample(tiny_trace, -1)


class TestStrideSample:
    def test_stride_two(self, tiny_trace):
        assert len(stride_sample(tiny_trace, 2)) == 3

    def test_stride_one_identity(self, tiny_trace):
        assert len(stride_sample(tiny_trace, 1)) == 6

    def test_invalid_stride(self, tiny_trace):
        with pytest.raises(ValueError):
            stride_sample(tiny_trace, 0)


class TestWindows:
    def test_op_window(self, tiny_trace):
        window = op_window(tiny_trace, 1, 3)
        assert [r.lba for r in window] == [16, 0]

    def test_op_window_invalid(self, tiny_trace):
        with pytest.raises(ValueError):
            op_window(tiny_trace, 3, 1)

    def test_time_window(self, tiny_trace):
        window = time_window(tiny_trace, 0.002, 0.004)
        assert len(window) == 2

    def test_time_window_invalid(self, tiny_trace):
        with pytest.raises(ValueError):
            time_window(tiny_trace, 1.0, 0.0)


class TestSplitAndBuckets:
    def test_split_by_op(self, tiny_trace):
        reads, writes = split_by_op(tiny_trace)
        assert len(reads) == 3 and all(r.is_read for r in reads)
        assert len(writes) == 3 and all(w.is_write for w in writes)

    def test_buckets_cover_trace(self, tiny_trace):
        buckets = op_index_buckets(tiny_trace, 4)
        assert [len(b) for b in buckets] == [4, 2]

    def test_bucket_size_one(self, tiny_trace):
        assert len(op_index_buckets(tiny_trace, 1)) == 6

    def test_invalid_bucket(self, tiny_trace):
        with pytest.raises(ValueError):
            op_index_buckets(tiny_trace, 0)
