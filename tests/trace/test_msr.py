"""MSR trace-format parser tests."""

import pytest

from repro.trace.msr import parse_msr_file, parse_msr_lines

# Timestamp(100ns ticks), Hostname, Disk, Type, Offset(bytes), Size(bytes), Latency
MSR_SAMPLE = [
    "128166372003061629,hm,1,Read,2048,4096,1221",
    "128166372013061629,hm,1,Write,512,512,900",
    "128166372023061629,hm,0,Read,0,4096,800",       # other disk
    "128166372033061629,hm,1,Read,10240,1536,700",   # non-sector-multiple size
]


class TestParseMsrLines:
    def test_parses_ops(self):
        trace = parse_msr_lines(MSR_SAMPLE, name="hm_1")
        assert len(trace) == 4
        assert trace[0].is_read
        assert trace[1].is_write

    def test_byte_to_sector_conversion(self):
        trace = parse_msr_lines(MSR_SAMPLE)
        assert trace[0].lba == 4       # 2048 / 512
        assert trace[0].length == 8    # 4096 / 512
        assert trace[3].length == 3    # 1536 / 512

    def test_timestamp_rebase(self):
        trace = parse_msr_lines(MSR_SAMPLE)
        assert trace[0].timestamp == 0.0
        assert abs(trace[1].timestamp - 1.0) < 1e-9  # 10^7 ticks = 1 s

    def test_disk_filter(self):
        trace = parse_msr_lines(MSR_SAMPLE, disk_number=1)
        assert len(trace) == 3
        assert all(True for _ in trace)

    def test_max_ops(self):
        assert len(parse_msr_lines(MSR_SAMPLE, max_ops=2)) == 2

    def test_zero_size_is_malformed(self):
        lines = ["128166372003061629,hm,1,Read,0,0,100"] + MSR_SAMPLE[:1]
        with pytest.raises(ValueError, match="size must be > 0"):
            parse_msr_lines(lines)
        assert len(parse_msr_lines(lines, policy="lenient")) == 1

    def test_bad_record_raises_with_location(self):
        with pytest.raises(ValueError, match="bad:2"):
            parse_msr_lines([MSR_SAMPLE[0], "garbage,x,y,z,1,2"], name="bad")

    def test_too_few_fields(self):
        with pytest.raises(ValueError, match="expected >=6"):
            parse_msr_lines(["1,2,3"])


class TestParseMsrFile:
    def test_file_parsing(self, tmp_path):
        path = tmp_path / "src2_2.csv"
        path.write_text("\n".join(MSR_SAMPLE) + "\n")
        trace = parse_msr_file(path)
        assert trace.name == "src2_2"
        assert len(trace) == 4
