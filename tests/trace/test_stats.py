"""Trace statistics (Table I columns) tests."""

from repro.trace.record import IORequest
from repro.trace.stats import compute_stats
from repro.trace.trace import Trace
from repro.util.units import gib_to_sectors


class TestComputeStats:
    def test_counts_and_volumes(self, tiny_trace):
        stats = compute_stats(tiny_trace)
        assert stats.read_count == 3
        assert stats.write_count == 3
        assert stats.read_sectors == 8 + 24 + 8
        assert stats.written_sectors == 8 + 8 + 4

    def test_mean_write_size(self):
        trace = Trace([IORequest.write(0, 2), IORequest.write(8, 4)])
        stats = compute_stats(trace)
        assert stats.mean_write_size_kib == (6 * 512 / 1024) / 2

    def test_mean_read_size_empty(self):
        stats = compute_stats(Trace([IORequest.write(0, 1)]))
        assert stats.mean_read_size_kib == 0.0

    def test_read_fraction(self, tiny_trace):
        assert compute_stats(tiny_trace).read_fraction == 0.5

    def test_read_fraction_empty(self):
        assert compute_stats(Trace([])).read_fraction == 0.0

    def test_write_intensity(self, tiny_trace):
        assert compute_stats(tiny_trace).write_intensity == 1.0

    def test_write_intensity_no_reads(self):
        stats = compute_stats(Trace([IORequest.write(0, 1)]))
        assert stats.write_intensity == float("inf")

    def test_write_intensity_empty(self):
        assert compute_stats(Trace([])).write_intensity == 0.0

    def test_volume_gib(self):
        trace = Trace([IORequest.read(0, gib_to_sectors(2))])
        assert abs(compute_stats(trace).read_volume_gib - 2.0) < 1e-9

    def test_duration(self, tiny_trace):
        assert abs(compute_stats(tiny_trace).duration_s - 0.005) < 1e-9

    def test_max_end(self, tiny_trace):
        assert compute_stats(tiny_trace).max_end == 24

    def test_op_count(self, tiny_trace):
        assert compute_stats(tiny_trace).op_count == 6
