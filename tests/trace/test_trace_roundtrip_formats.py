"""Cross-format integration: synthetic traces through every parser path."""

from repro.trace.cloudphysics import parse_cloudphysics_lines
from repro.trace.csvio import read_csv_trace, write_csv_trace
from repro.trace.msr import parse_msr_lines
from repro.trace.stats import compute_stats
from repro.workloads import synthesize_workload


def to_msr_lines(trace):
    """Render a trace in MSR CSV form (bytes, FILETIME ticks)."""
    lines = []
    for request in trace:
        ticks = int(request.timestamp * 10_000_000) + 128_166_372_000_000_000
        op = "Read" if request.is_read else "Write"
        lines.append(
            f"{ticks},host,0,{op},{request.lba * 512},{request.length * 512},100"
        )
    return lines


def to_cloudphysics_lines(trace):
    """Render a trace in CloudPhysics CSV form (microseconds, sectors)."""
    lines = ["timestamp_us,op,lba,length"]
    for request in trace:
        lines.append(
            f"{request.timestamp * 1e6:.0f},{request.op.value},"
            f"{request.lba},{request.length}"
        )
    return lines


class TestFormatRoundTrips:
    def setup_method(self):
        self.trace = synthesize_workload("ts_0", seed=5, scale=0.02)

    def assert_equivalent(self, other):
        ours = compute_stats(self.trace)
        theirs = compute_stats(other)
        assert ours.read_count == theirs.read_count
        assert ours.write_count == theirs.write_count
        assert ours.read_sectors == theirs.read_sectors
        assert ours.written_sectors == theirs.written_sectors
        for a, b in zip(self.trace, other):
            assert (a.op, a.lba, a.length) == (b.op, b.lba, b.length)

    def test_msr_round_trip(self):
        self.assert_equivalent(parse_msr_lines(to_msr_lines(self.trace)))

    def test_cloudphysics_round_trip(self):
        self.assert_equivalent(
            parse_cloudphysics_lines(to_cloudphysics_lines(self.trace))
        )

    def test_native_csv_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv_trace(self.trace, path)
        self.assert_equivalent(read_csv_trace(path))
