"""The persistent compiled-trace store (repro.trace.store).

Invalidation is by construction — the entry key hashes the complete parse
identity — so these tests pin the behaviours that matter: byte-exact
round-trips (columns *and* the full ParseReport), hits that skip the
parser, forced misses whenever the source bytes / policy / parse args /
parser version change, and corrupt-entry healing.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

import repro.trace.store as store_mod
from repro.trace.columnar import ColumnarTrace
from repro.trace.store import (
    TraceStore,
    file_meta,
    load_trace,
    meta_key,
    synthetic_meta,
)
from repro.workloads import synthesize_workload

CSV_DIRTY = (
    "timestamp,op,lba,length\n"
    "0.0,read,0,8\n"
    "0.1,write,16,8\n"
    "zz,read,1,1\n"  # bad row: exercises report round-tripping
    "0.2,read,0,24\n"
)


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "dirty.csv"
    path.write_text(CSV_DIRTY)
    return path


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "store")


@pytest.fixture
def parse_counter(monkeypatch):
    """Count how often the store actually parses (vs. serves a hit)."""
    calls = []
    original = store_mod._parse

    def counting(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(store_mod, "_parse", counting)
    return calls


def _report_tuple(report):
    issues = lambda lst: [(i.line_no, i.reason, i.line) for i in lst]
    return (
        report.name,
        report.policy,
        report.records,
        report.accepted,
        report.skipped,
        report.quarantined,
        report.filtered,
        issues(report.errors),
        issues(report.quarantine),
        report.max_error_samples,
    )


class TestRoundTrip:
    def test_columns_and_report_identical(self, source, store):
        parsed = load_trace(source, "csv", store=store, policy="quarantine")
        loaded = load_trace(source, "csv", store=store, policy="quarantine")
        assert isinstance(loaded, ColumnarTrace)
        assert loaded.name == parsed.name
        assert list(loaded) == list(parsed)
        for got, want in zip(loaded.as_arrays(), parsed.as_arrays()):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)
        assert np.array_equal(loaded.timestamps(), parsed.timestamps())
        assert loaded.timestamps().dtype == np.float64
        assert _report_tuple(loaded.parse_report) == _report_tuple(
            parsed.parse_report
        )

    def test_synthetic_round_trip_without_report(self, store):
        trace = synthesize_workload("hm_1", seed=7, scale=0.01)
        meta = synthetic_meta("hm_1", 7, 0.01)
        store.store(trace, meta)
        loaded = store.load(meta)
        assert list(loaded) == list(trace)
        assert loaded.parse_report is None

    def test_store_without_a_store_is_a_plain_parse(self, source):
        trace = load_trace(source, "csv", policy="lenient")
        assert len(trace) == 3

    def test_unknown_format_rejected(self, source, store):
        with pytest.raises(ValueError, match="fmt"):
            load_trace(source, "binary", store=store)


class TestHitsAndMisses:
    def test_unchanged_source_hits(self, source, store, parse_counter):
        load_trace(source, "csv", store=store, policy="lenient")
        load_trace(source, "csv", store=store, policy="lenient")
        assert len(parse_counter) == 1
        assert len(store) == 1

    def test_source_byte_change_misses(self, source, store, parse_counter):
        load_trace(source, "csv", store=store, policy="lenient")
        source.write_text(CSV_DIRTY + "0.3,write,32,8\n")
        trace = load_trace(source, "csv", store=store, policy="lenient")
        assert len(parse_counter) == 2
        assert len(trace) == 4
        assert len(store) == 2  # the stale entry lands on a different key

    def test_policy_change_misses(self, source, store, parse_counter):
        load_trace(source, "csv", store=store, policy="lenient")
        load_trace(source, "csv", store=store, policy="quarantine")
        assert len(parse_counter) == 2

    def test_parse_arg_change_misses(self, source, store, parse_counter):
        load_trace(source, "csv", store=store, policy="lenient")
        load_trace(
            source, "csv", store=store, policy="lenient", capacity_sectors=10**9
        )
        assert len(parse_counter) == 2

    def test_parser_version_change_misses(
        self, source, store, parse_counter, monkeypatch
    ):
        load_trace(source, "csv", store=store, policy="lenient")
        monkeypatch.setattr(store_mod, "COLUMNAR_PARSER_VERSION", 999_999)
        load_trace(source, "csv", store=store, policy="lenient")
        assert len(parse_counter) == 2

    def test_meta_key_is_canonical(self):
        a = {"kind": "synthetic", "name": "x", "seed": 1, "scale": 1.0, "version": "1"}
        b = dict(reversed(list(a.items())))
        assert meta_key(a) == meta_key(b)


class TestCorruption:
    def test_corrupt_header_is_a_miss_and_removed(self, source, store):
        meta = file_meta(source, "csv", policy="lenient")
        load_trace(source, "csv", store=store, policy="lenient")
        path = store.path_for(meta)
        (path / "header.json").write_text("not json")
        assert store.load(meta) is None
        assert not path.exists()
        # The next load_trace heals the entry.
        trace = load_trace(source, "csv", store=store, policy="lenient")
        assert len(trace) == 3 and path.exists()

    def test_torn_column_is_a_miss_and_removed(self, source, store):
        meta = file_meta(source, "csv", policy="lenient")
        load_trace(source, "csv", store=store, policy="lenient")
        path = store.path_for(meta)
        # Simulate a torn write: the column file exists but is not a
        # complete .npy (a crash between publish steps cannot produce
        # this — commits are tmp-dir+rename — but disks happen).
        (path / "lba.npy").write_bytes(b"torn")
        assert store.load(meta) is None
        assert not path.exists()
        trace = load_trace(source, "csv", store=store, policy="lenient")
        assert len(trace) == 3 and path.exists()

    def test_truncated_column_is_a_miss_and_removed(self, source, store):
        meta = file_meta(source, "csv", policy="lenient")
        load_trace(source, "csv", store=store, policy="lenient")
        path = store.path_for(meta)
        # A valid .npy holding the wrong number of rows (header 'ops'
        # disagrees) must not be served.
        lba = path / "lba.npy"
        data = lba.read_bytes()
        lba.write_bytes(data[:-8])
        assert store.load(meta) is None
        assert not path.exists()

    def test_header_meta_mismatch_is_a_miss(self, source, store):
        meta = file_meta(source, "csv", policy="lenient")
        other = file_meta(source, "csv", policy="quarantine")
        load_trace(source, "csv", store=store, policy="lenient")
        # A foreign entry squatting on another key must not be served.
        shutil.copytree(store.path_for(meta), store.path_for(other))
        assert store.load(other) is None
        assert not store.path_for(other).exists()

    def test_foreign_schema_is_a_miss(self, source, store):
        import json

        meta = file_meta(source, "csv", policy="lenient")
        load_trace(source, "csv", store=store, policy="lenient")
        path = store.path_for(meta)
        header = json.loads((path / "header.json").read_text())
        header["schema"] = store_mod.STORE_SCHEMA + 1
        (path / "header.json").write_text(json.dumps(header))
        assert store.load(meta) is None
        assert not path.exists()

    def test_clear_empties_the_store(self, source, store):
        load_trace(source, "csv", store=store, policy="lenient")
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0 and store.entries() == []


class TestExperimentIntegration:
    def test_workload_trace_round_trips_through_store(self, tmp_path, monkeypatch):
        from repro.experiments import common

        direct = synthesize_workload("hm_1", seed=3, scale=0.01)
        previous = common.trace_store()
        common.set_trace_store(tmp_path / "store")
        try:
            common.clear_trace_cache()
            first = common.workload_trace("hm_1", 3, 0.01)
            assert list(first) == list(direct)
            assert len(common.trace_store()) == 1

            # A cold process (empty LRU) must load from the store, not
            # re-synthesize: poison the generator to prove it.
            common.clear_trace_cache()
            monkeypatch.setattr(
                common,
                "synthesize_workload",
                lambda *a, **k: pytest.fail("store should have served this"),
            )
            second = common.workload_trace("hm_1", 3, 0.01)
            assert second.name == first.name
            assert list(second) == list(direct)
        finally:
            common.set_trace_store(previous)
            common.clear_trace_cache()
