"""IORequest / OpType tests."""

import pytest

from repro.trace.record import IORequest, OpType


class TestOpTypeParse:
    @pytest.mark.parametrize("token", ["R", "r", "Read", "READ", "rd", "0"])
    def test_read_tokens(self, token):
        assert OpType.parse(token) is OpType.READ

    @pytest.mark.parametrize("token", ["W", "w", "Write", "WRITE", "wr", "1"])
    def test_write_tokens(self, token):
        assert OpType.parse(token) is OpType.WRITE

    def test_unknown_token(self):
        with pytest.raises(ValueError, match="unrecognized"):
            OpType.parse("trim")

    def test_flags(self):
        assert OpType.READ.is_read and not OpType.READ.is_write
        assert OpType.WRITE.is_write and not OpType.WRITE.is_read


class TestIORequest:
    def test_end(self):
        assert IORequest.read(10, 5).end == 15

    def test_shorthand_constructors(self):
        r = IORequest.read(1, 2, timestamp=3.0)
        w = IORequest.write(1, 2)
        assert r.is_read and r.timestamp == 3.0
        assert w.is_write and w.timestamp == 0.0

    def test_immutable(self):
        request = IORequest.read(0, 1)
        with pytest.raises(AttributeError):
            request.lba = 5

    def test_overlaps(self):
        a = IORequest.read(0, 10)
        assert a.overlaps(IORequest.read(9, 1))
        assert not a.overlaps(IORequest.read(10, 1))
        assert a.overlaps(IORequest.write(5, 100))

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            IORequest.read(0, 0)

    def test_rejects_negative_lba(self):
        with pytest.raises(ValueError):
            IORequest.read(-1, 1)

    def test_rejects_bool_addresses(self):
        with pytest.raises(TypeError):
            IORequest(0.0, OpType.READ, True, 1)
        with pytest.raises(TypeError):
            IORequest(0.0, OpType.READ, 0, True)

    def test_rejects_non_optype(self):
        with pytest.raises(TypeError):
            IORequest(0.0, "R", 0, 1)

    def test_equality(self):
        assert IORequest.read(0, 1) == IORequest.read(0, 1)
        assert IORequest.read(0, 1) != IORequest.write(0, 1)
