"""External-format writer tests (round-trip through the parsers)."""

from repro.trace.cloudphysics import parse_cloudphysics_file
from repro.trace.msr import parse_msr_file
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.trace.writers import write_cloudphysics_trace, write_msr_trace


def sample_trace():
    return Trace(
        [
            IORequest.write(0, 8, 0.0),
            IORequest.read(100, 16, 0.5),
            IORequest.write(8, 3, 1.25),  # odd sector count
        ],
        name="sample",
    )


class TestMsrWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        write_msr_trace(sample_trace(), path)
        loaded = parse_msr_file(path)
        assert len(loaded) == 3
        for a, b in zip(loaded, sample_trace()):
            assert (a.op, a.lba, a.length) == (b.op, b.lba, b.length)
            assert abs(a.timestamp - b.timestamp) < 1e-6

    def test_disk_number_filterable(self, tmp_path):
        path = tmp_path / "t.csv"
        write_msr_trace(sample_trace(), path, disk_number=3)
        assert len(parse_msr_file(path, disk_number=3)) == 3
        assert len(parse_msr_file(path, disk_number=0)) == 0

    def test_format_fields(self, tmp_path):
        path = tmp_path / "t.csv"
        write_msr_trace(sample_trace(), path, hostname="srv")
        first = path.read_text().splitlines()[0].split(",")
        assert first[1] == "srv"
        assert first[3] == "Write"
        assert first[4] == "0" and first[5] == str(8 * 512)


class TestCloudPhysicsWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        write_cloudphysics_trace(sample_trace(), path)
        loaded = parse_cloudphysics_file(path)
        assert len(loaded) == 3
        for a, b in zip(loaded, sample_trace()):
            assert (a.op, a.lba, a.length) == (b.op, b.lba, b.length)
            assert abs(a.timestamp - b.timestamp) < 1e-5

    def test_header_present(self, tmp_path):
        path = tmp_path / "t.csv"
        write_cloudphysics_trace(sample_trace(), path)
        assert path.read_text().startswith("timestamp_us,op,lba,length\n")
