"""Native CSV trace round-trip tests."""

import pytest

from repro.trace.csvio import read_csv_trace, write_csv_trace
from repro.trace.record import IORequest


class TestRoundTrip:
    def test_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "t.csv"
        write_csv_trace(tiny_trace, path)
        loaded = read_csv_trace(path)
        assert len(loaded) == len(tiny_trace)
        for a, b in zip(loaded, tiny_trace):
            assert (a.op, a.lba, a.length) == (b.op, b.lba, b.length)
            assert abs(a.timestamp - b.timestamp) < 1e-6

    def test_name_defaults_to_stem(self, tiny_trace, tmp_path):
        path = tmp_path / "wl91.csv"
        write_csv_trace(tiny_trace, path)
        assert read_csv_trace(path).name == "wl91"

    def test_explicit_name(self, tiny_trace, tmp_path):
        path = tmp_path / "x.csv"
        write_csv_trace(tiny_trace, path)
        assert read_csv_trace(path, name="custom").name == "custom"


class TestReadFormats:
    def test_headerless(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.5,R,100,8\n1.0,W,0,16\n")
        trace = read_csv_trace(path)
        assert len(trace) == 2
        assert trace[0].is_read and trace[0].lba == 100

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# comment\n\n0.0,R,0,1\n")
        assert len(read_csv_trace(path)) == 1

    def test_bad_row_reports_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.0,R,0,1\nnot,a,row\n")
        with pytest.raises(ValueError, match="t.csv:2"):
            read_csv_trace(path)

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.0,R,0,1,extra\n")
        assert len(read_csv_trace(path)) == 1
