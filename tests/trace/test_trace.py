"""Trace container tests."""

from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace


class TestTraceBasics:
    def test_len_and_iter(self, tiny_trace):
        assert len(tiny_trace) == 6
        assert sum(1 for _ in tiny_trace) == 6

    def test_indexing(self, tiny_trace):
        assert tiny_trace[0].is_write
        assert tiny_trace[-1].lba == 16

    def test_slicing_returns_trace(self, tiny_trace):
        head = tiny_trace[:2]
        assert isinstance(head, Trace)
        assert len(head) == 2
        assert head.name == tiny_trace.name

    def test_counts(self, tiny_trace):
        assert tiny_trace.read_count == 3
        assert tiny_trace.write_count == 3

    def test_repr(self, tiny_trace):
        assert "tiny" in repr(tiny_trace)
        assert "6" in repr(tiny_trace)


class TestMaxEnd:
    def test_max_end(self, tiny_trace):
        assert tiny_trace.max_end == 24

    def test_empty_trace(self):
        assert Trace([]).max_end == 0

    def test_cached_value_stable(self, tiny_trace):
        assert tiny_trace.max_end == tiny_trace.max_end


class TestFilterAndRename:
    def test_filter_reads(self, tiny_trace):
        reads = tiny_trace.filter(OpType.READ)
        assert len(reads) == 3
        assert all(r.is_read for r in reads)

    def test_renamed(self, tiny_trace):
        assert tiny_trace.renamed("other").name == "other"
        assert len(tiny_trace.renamed("other")) == len(tiny_trace)


class TestConcat:
    def test_concat_shifts_timestamps(self):
        a = Trace([IORequest.read(0, 1, 10.0)], name="a")
        b = Trace([IORequest.read(8, 1, 0.0), IORequest.read(16, 1, 5.0)], name="b")
        combined = a.concat(b)
        assert len(combined) == 3
        timestamps = [r.timestamp for r in combined]
        assert timestamps == sorted(timestamps)
        assert timestamps[1] > 10.0

    def test_concat_empty(self):
        a = Trace([IORequest.read(0, 1)], name="a")
        assert len(a.concat(Trace([]))) == 1
