"""Service-time estimation tests."""

from repro.analysis.service import ServiceTimeEstimate, estimate_service_time
from repro.core.config import LS, LS_CACHE, NOLS
from repro.workloads import synthesize_workload


class TestServiceTimeEstimate:
    def test_decomposition(self):
        estimate = ServiceTimeEstimate(seeks=5, seek_ms=10.0, transfer_ms=30.0)
        assert estimate.total_ms == 40.0
        assert estimate.seek_share == 0.25

    def test_zero_total(self):
        assert ServiceTimeEstimate(0, 0.0, 0.0).seek_share == 0.0


class TestEstimateServiceTime:
    def setup_method(self):
        self.trace = synthesize_workload("w91", seed=42, scale=0.1)

    def test_transfer_equal_across_non_defrag_configs(self):
        nols = estimate_service_time(self.trace, NOLS)
        ls = estimate_service_time(self.trace, LS)
        cache = estimate_service_time(self.trace, LS_CACHE)
        assert nols.transfer_ms == ls.transfer_ms == cache.transfer_ms

    def test_cache_cuts_seek_time_on_log_sensitive_workload(self):
        ls = estimate_service_time(self.trace, LS)
        cache = estimate_service_time(self.trace, LS_CACHE)
        assert cache.seek_ms < ls.seek_ms
        assert cache.seeks < ls.seeks

    def test_positive_components(self):
        estimate = estimate_service_time(self.trace, NOLS)
        assert estimate.seeks > 0
        assert estimate.seek_ms > 0.0
        assert estimate.transfer_ms > 0.0
