"""Fragment popularity / cache-sizing tests (Fig. 10)."""

import pytest

from repro.analysis.popularity import FragmentPopularityRecorder, PopularityCurve
from repro.core.simulator import replay
from repro.core.translators import LogStructuredTranslator
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.util.units import sectors_to_mib


class TestRecorder:
    def make_replay(self, requests):
        recorder = FragmentPopularityRecorder()
        replay(Trace(requests), LogStructuredTranslator(frontier_base=10_000), [recorder])
        return recorder

    def test_counts_fragmented_read_pieces(self):
        recorder = self.make_replay(
            [
                IORequest.write(4, 2),
                IORequest.read(0, 10),   # 3 pieces
                IORequest.read(0, 10),   # same 3 pieces again
            ]
        )
        curve = recorder.curve()
        assert recorder.distinct_fragments == 3
        assert curve.total_accesses == 6
        assert curve.access_counts[0] == 2

    def test_unfragmented_reads_ignored(self):
        recorder = self.make_replay(
            [IORequest.write(0, 8), IORequest.read(0, 8)]
        )
        assert recorder.distinct_fragments == 0

    def test_writes_ignored(self):
        recorder = self.make_replay([IORequest.write(0, 8)])
        assert recorder.distinct_fragments == 0

    def test_size_tracks_largest_observation(self):
        recorder = self.make_replay(
            [
                IORequest.write(8, 8),
                IORequest.read(6, 4),    # piece at pba 10000 len 2
                IORequest.read(6, 12),   # piece at pba 10000 len 8... same start
            ]
        )
        curve = recorder.curve()
        assert curve.cumulative_mib[-1] >= sectors_to_mib(8)


class TestPopularityCurve:
    def test_sorted_descending(self):
        curve = PopularityCurve(access_counts=[5, 3, 1], cumulative_mib=[1.0, 2.0, 3.0])
        assert curve.fragment_count == 3
        assert curve.total_accesses == 9

    def test_cache_size_for_share(self):
        curve = PopularityCurve(access_counts=[6, 3, 1], cumulative_mib=[1.0, 2.0, 3.0])
        assert curve.cache_mib_for_access_share(0.6) == 1.0
        assert curve.cache_mib_for_access_share(0.9) == 2.0
        assert curve.cache_mib_for_access_share(1.0) == 3.0

    def test_share_validation(self):
        curve = PopularityCurve(access_counts=[1], cumulative_mib=[1.0])
        with pytest.raises(ValueError):
            curve.cache_mib_for_access_share(0.0)
        with pytest.raises(ValueError):
            curve.cache_mib_for_access_share(1.5)

    def test_empty_curve(self):
        curve = PopularityCurve(access_counts=[], cumulative_mib=[])
        assert curve.cache_mib_for_access_share(0.5) == 0.0
