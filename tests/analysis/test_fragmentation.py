"""Dynamic-fragmentation analysis tests (Fig. 5)."""

import pytest

from repro.analysis.fragmentation import (
    fragment_cdf,
    fragment_concentration,
    fraction_of_fragments_in_top_reads,
)


class TestFragmentCdf:
    def test_ignores_unfragmented(self):
        cdf = fragment_cdf([1, 1, 2, 3])
        assert [x for x, _ in cdf] == [2.0, 3.0]

    def test_cdf_values(self):
        cdf = fragment_cdf([2, 2, 4])
        assert cdf == [(2.0, 2 / 3), (4.0, 1.0)]

    def test_empty(self):
        assert fragment_cdf([1, 1]) == []


class TestConcentration:
    def test_lorenz_shape(self):
        curve = fragment_concentration([10, 2, 2, 2])
        # Top read (25% of reads) holds 10/16 of fragments.
        assert curve[0] == (0.25, 10 / 16)
        assert curve[-1] == (1.0, 1.0)

    def test_uniform_fragments_linear(self):
        curve = fragment_concentration([2, 2, 2, 2])
        for frac_reads, frac_frags in curve:
            assert abs(frac_reads - frac_frags) < 1e-12

    def test_empty(self):
        assert fragment_concentration([1]) == []


class TestTopReadsShare:
    def test_skewed(self):
        # One read with 50 fragments among ten 2-fragment reads.
        fragments = [50] + [2] * 10
        share = fraction_of_fragments_in_top_reads(fragments, top_fraction=0.1)
        assert share > 0.7

    def test_uniform_matches_fraction(self):
        share = fraction_of_fragments_in_top_reads([2] * 10, top_fraction=0.2)
        assert abs(share - 0.2) < 1e-12

    def test_empty_returns_zero(self):
        assert fraction_of_fragments_in_top_reads([1, 1]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fraction_of_fragments_in_top_reads([2], top_fraction=0.0)
        with pytest.raises(ValueError):
            fraction_of_fragments_in_top_reads([2], top_fraction=1.5)


class TestStaticFragmentationSeries:
    def test_growth_without_defrag(self):
        from repro.analysis.fragmentation import static_fragmentation_series
        from repro.core.config import LS
        from repro.workloads import synthesize_workload

        trace = synthesize_workload("w91", seed=42, scale=0.1)
        series = static_fragmentation_series(trace, LS, sample_every=500)
        assert series[-1][0] == len(trace)
        # Fragmentation accumulates over the run.
        assert series[-1][1] > series[0][1]

    def test_defrag_reduces_terminal_fragmentation(self):
        from repro.analysis.fragmentation import static_fragmentation_series
        from repro.core.config import LS, LS_DEFRAG
        from repro.workloads import synthesize_workload

        trace = synthesize_workload("w91", seed=42, scale=0.1)
        plain = static_fragmentation_series(trace, LS, sample_every=10_000)
        defrag = static_fragmentation_series(trace, LS_DEFRAG, sample_every=10_000)
        assert defrag[-1][1] < plain[-1][1]

    def test_nols_rejected(self):
        from repro.analysis.fragmentation import static_fragmentation_series
        from repro.core.config import NOLS
        from repro.workloads import synthesize_workload

        trace = synthesize_workload("ts_0", seed=42, scale=0.02)
        with pytest.raises(ValueError, match="log-structured"):
            static_fragmentation_series(trace, NOLS)

    def test_sample_every_validated(self):
        from repro.analysis.fragmentation import static_fragmentation_series
        from repro.core.config import LS
        from repro.workloads import synthesize_workload

        trace = synthesize_workload("ts_0", seed=42, scale=0.02)
        with pytest.raises(ValueError):
            static_fragmentation_series(trace, LS, sample_every=0)
