"""Workload taxonomy tests."""

import pytest

from repro.analysis.classify import (
    LogSensitivity,
    WorkloadCharacter,
    characterize,
    classify_saf,
    classify_stats,
)
from repro.core.outcomes import SimStats
from repro.trace.record import IORequest
from repro.trace.trace import Trace


class TestClassifySaf:
    def test_bands(self):
        assert classify_saf(0.5) is LogSensitivity.LOG_FRIENDLY
        assert classify_saf(1.0) is LogSensitivity.LOG_AGNOSTIC
        assert classify_saf(2.0) is LogSensitivity.LOG_SENSITIVE

    def test_band_edges(self):
        assert classify_saf(0.9) is LogSensitivity.LOG_FRIENDLY
        assert classify_saf(1.1) is LogSensitivity.LOG_SENSITIVE

    def test_custom_bands(self):
        assert classify_saf(1.05, friendly_below=0.5, sensitive_above=2.0) is (
            LogSensitivity.LOG_AGNOSTIC
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            classify_saf(-0.1)
        with pytest.raises(ValueError):
            classify_saf(1.0, friendly_below=2.0, sensitive_above=1.0)

    def test_classify_stats(self):
        translated = SimStats(read_seeks=30)
        baseline = SimStats(read_seeks=10)
        assert classify_stats(translated, baseline) is LogSensitivity.LOG_SENSITIVE


class TestCharacterize:
    def test_write_intensity(self):
        trace = Trace(
            [IORequest.write(0, 8), IORequest.write(8, 8), IORequest.read(0, 8)]
        )
        assert characterize(trace).write_intensity == 2.0

    def test_no_reads_infinite_intensity(self):
        trace = Trace([IORequest.write(0, 8)])
        assert characterize(trace).write_intensity == float("inf")

    def test_sequential_read_share(self):
        trace = Trace(
            [
                IORequest.read(0, 8),
                IORequest.read(8, 8),     # sequential
                IORequest.read(100, 8),   # not
            ]
        )
        assert abs(characterize(trace).sequential_read_share - 1 / 3) < 1e-9

    def test_overwrite_ratio(self):
        trace = Trace(
            [IORequest.write(0, 8), IORequest.write(0, 8), IORequest.write(8, 8)]
        )
        assert abs(characterize(trace).overwrite_ratio - 8 / 24) < 1e-9

    def test_mixed_read_share(self):
        trace = Trace(
            [
                IORequest.write(8, 8),
                IORequest.read(0, 16),   # straddles hole + written
                IORequest.read(8, 8),    # fully written
                IORequest.read(100, 8),  # fully unwritten
            ]
        )
        assert abs(characterize(trace).mixed_read_share - 1 / 3) < 1e-9

    def test_empty_trace(self):
        character = characterize(Trace([]))
        assert character.read_fraction == 0.0
        assert character.overwrite_ratio == 0.0


class TestPrediction:
    def test_write_dominant_predicts_friendly(self):
        character = WorkloadCharacter(
            write_intensity=5.0,
            sequential_read_share=0.9,
            overwrite_ratio=0.9,
            mixed_read_share=0.9,
            read_fraction=0.1,
        )
        assert character.predicted_sensitivity() is LogSensitivity.LOG_FRIENDLY

    def test_scan_over_overwrites_predicts_sensitive(self):
        character = WorkloadCharacter(
            write_intensity=0.2,
            sequential_read_share=0.7,
            overwrite_ratio=0.5,
            mixed_read_share=0.1,
            read_fraction=0.8,
        )
        assert character.predicted_sensitivity() is LogSensitivity.LOG_SENSITIVE

    def test_mixed_reads_predict_sensitive(self):
        character = WorkloadCharacter(
            write_intensity=0.5,
            sequential_read_share=0.0,
            overwrite_ratio=0.05,
            mixed_read_share=0.5,
            read_fraction=0.7,
        )
        assert character.predicted_sensitivity() is LogSensitivity.LOG_SENSITIVE

    def test_random_everything_predicts_friendly(self):
        character = WorkloadCharacter(
            write_intensity=1.0,
            sequential_read_share=0.05,
            overwrite_ratio=0.1,
            mixed_read_share=0.1,
            read_fraction=0.5,
        )
        assert character.predicted_sensitivity() is LogSensitivity.LOG_FRIENDLY

    def test_prediction_matches_measured_on_archetypes(self):
        """The feature heuristic must agree with measured SAF classes on
        the clear-cut archetypes (the borderline ones are exempt)."""
        from repro.core.config import LS, NOLS, build_translator
        from repro.core.metrics import seek_amplification
        from repro.core.simulator import replay
        from repro.workloads import synthesize_workload

        for name, expected in (
            ("w91", LogSensitivity.LOG_SENSITIVE),
            ("w36", LogSensitivity.LOG_FRIENDLY),
            ("rsrch_0", LogSensitivity.LOG_FRIENDLY),
        ):
            trace = synthesize_workload(name, seed=42, scale=0.3)
            predicted = characterize(trace).predicted_sensitivity()
            assert predicted is expected, name
