"""Access-distance analysis tests (Fig. 4)."""

import pytest

from repro.analysis.distances import clip_distances, distance_cdf, fraction_within
from repro.util.units import gib_to_sectors


class TestClipDistances:
    def test_clips_both_sides(self):
        limit = gib_to_sectors(1.0)
        distances = [0, limit, -limit, limit + 1, -(limit + 1)]
        assert clip_distances(distances, 1.0) == [0, limit, -limit]

    def test_empty(self):
        assert clip_distances([], 1.0) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            clip_distances([1], 0)


class TestDistanceCdf:
    def test_cdf_monotone(self):
        cdf = distance_cdf([5, -3, 5, 100, -3])
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_values_sorted(self):
        cdf = distance_cdf([10, -10, 0])
        assert [x for x, _ in cdf] == [-10.0, 0.0, 10.0]


class TestFractionWithin:
    def test_all_within(self):
        assert fraction_within([1, -1, 100], 1.0) == 1.0

    def test_partial(self):
        limit = gib_to_sectors(1.0)
        assert fraction_within([0, limit * 2], 1.0) == 0.5

    def test_empty(self):
        assert fraction_within([], 1.0) == 0.0
