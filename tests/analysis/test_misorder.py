"""Mis-ordered write detection tests (Fig. 8)."""

import pytest

from repro.analysis.misorder import misorder_rate, misordered_writes
from repro.trace.record import IORequest
from repro.trace.trace import Trace


def wtrace(*spans):
    return Trace([IORequest.write(lba, length) for lba, length in spans])


class TestDetection:
    def test_reversed_pair_flagged(self):
        # Write at 8 before the write at 0 that it sequentially follows.
        trace = wtrace((8, 8), (0, 8))
        assert misordered_writes(trace) == [0]

    def test_ascending_pair_not_flagged(self):
        trace = wtrace((0, 8), (8, 8))
        assert misordered_writes(trace) == []

    def test_reversed_chunk(self):
        # Fig. 7-style descending chunk: all but the last are mis-ordered.
        trace = wtrace((24, 8), (16, 8), (8, 8), (0, 8))
        assert misordered_writes(trace) == [0, 1, 2]

    def test_horizon_limits_lookahead(self):
        # The matching write arrives beyond 256 KB of intervening volume.
        filler = [(100_000 + i * 1024, 1024) for i in range(2)]  # 2 * 512 KiB
        trace = wtrace((8, 8), *filler, (0, 8))
        assert misordered_writes(trace, horizon_kib=256.0) == []
        assert misordered_writes(trace, horizon_kib=2048.0) == [0]

    def test_reads_ignored(self):
        trace = Trace(
            [
                IORequest.write(8, 8),
                IORequest.read(0, 8),   # a read, not a matching write
                IORequest.write(0, 8),
            ]
        )
        assert misordered_writes(trace) == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            misordered_writes(wtrace((0, 8)), horizon_kib=0)


class TestRate:
    def test_rate(self):
        trace = wtrace((8, 8), (0, 8), (100, 8), (200, 8))
        assert misorder_rate(trace) == 0.25

    def test_rate_no_writes(self):
        assert misorder_rate(Trace([IORequest.read(0, 8)])) == 0.0
