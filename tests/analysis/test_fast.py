"""Vectorized fast-path tests: exact agreement with the reference code."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fast import (
    misorder_rate_fast,
    nols_seek_counts,
    nols_seek_distances,
    trace_arrays,
)
from repro.analysis.misorder import misorder_rate
from repro.core.config import NOLS, build_translator
from repro.core.recorders import SeekLogRecorder
from repro.core.simulator import replay
from repro.trace.record import IORequest, OpType
from repro.trace.trace import Trace
from repro.workloads import synthesize_workload

traces = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=1, max_value=64),
    ),
    max_size=60,
).map(
    lambda triples: Trace(
        [
            IORequest(
                float(i), OpType.READ if is_read else OpType.WRITE, lba, length
            )
            for i, (is_read, lba, length) in enumerate(triples)
        ]
    )
)


class TestSeekCounts:
    def test_empty(self):
        assert nols_seek_counts(Trace([])) == (0, 0)

    def test_single_op(self):
        assert nols_seek_counts(Trace([IORequest.read(0, 8)])) == (0, 0)

    @given(trace=traces)
    @settings(max_examples=150, deadline=None)
    def test_matches_reference_replay(self, trace):
        stats = replay(trace, build_translator(trace, NOLS)).stats
        read_seeks, write_seeks = nols_seek_counts(trace)
        assert (read_seeks, write_seeks) == (stats.read_seeks, stats.write_seeks)

    def test_on_archetype(self):
        trace = synthesize_workload("ts_0", seed=3, scale=0.1)
        stats = replay(trace, build_translator(trace, NOLS)).stats
        assert nols_seek_counts(trace) == (stats.read_seeks, stats.write_seeks)


class TestSeekDistances:
    @given(trace=traces)
    @settings(max_examples=100, deadline=None)
    def test_matches_seek_log(self, trace):
        recorder = SeekLogRecorder()
        replay(trace, build_translator(trace, NOLS), [recorder])
        assert list(nols_seek_distances(trace)) == recorder.distances

    def test_short_traces(self):
        assert nols_seek_distances(Trace([])).size == 0
        assert nols_seek_distances(Trace([IORequest.read(0, 1)])).size == 0


class TestMisorderFast:
    @given(trace=traces)
    @settings(max_examples=100, deadline=None)
    def test_matches_reference(self, trace):
        assert misorder_rate_fast(trace) == pytest.approx(misorder_rate(trace))

    def test_on_archetype(self):
        trace = synthesize_workload("src2_2", seed=42, scale=0.2)
        assert misorder_rate_fast(trace) == pytest.approx(misorder_rate(trace))

    def test_validation(self):
        with pytest.raises(ValueError):
            misorder_rate_fast(Trace([]), horizon_kib=0)


class TestTraceArrays:
    def test_shapes_and_values(self, tiny_trace):
        is_read, lba, length = trace_arrays(tiny_trace)
        assert len(is_read) == len(tiny_trace)
        assert lba[0] == 0 and length[0] == 8
        assert not is_read[0] and is_read[2]
