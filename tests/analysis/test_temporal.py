"""Temporal long-seek analysis tests (Fig. 3)."""

import pytest

from repro.analysis.temporal import WindowedSeekRecorder, long_seek_difference
from repro.core.simulator import replay
from repro.core.translators import InPlaceTranslator
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.util.units import kib_to_sectors

FAR = kib_to_sectors(600.0)   # above the 500 KB threshold
NEAR = kib_to_sectors(100.0)  # below it


class TestWindowedSeekRecorder:
    def replay_with_recorder(self, requests, window_ops=2):
        recorder = WindowedSeekRecorder(window_ops=window_ops, min_seek_kib=500.0)
        replay(Trace(requests), InPlaceTranslator(), [recorder])
        return recorder

    def test_counts_long_seeks_per_window(self):
        recorder = self.replay_with_recorder(
            [
                IORequest.read(0, 8),
                IORequest.read(FAR * 2, 8),        # long seek, window 0
                IORequest.read(FAR * 4, 8),        # long seek, window 1
                IORequest.read(FAR * 4 + 8, 8),    # contiguous, no seek
            ]
        )
        assert recorder.series() == [1, 1]

    def test_short_seeks_ignored(self):
        recorder = self.replay_with_recorder(
            [IORequest.read(0, 8), IORequest.read(NEAR, 8)]
        )
        assert recorder.series() == [0]

    def test_backward_long_seeks_counted(self):
        recorder = self.replay_with_recorder(
            [IORequest.read(FAR * 4, 8), IORequest.read(0, 8)]
        )
        assert sum(recorder.series()) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedSeekRecorder(window_ops=0)
        with pytest.raises(ValueError):
            WindowedSeekRecorder(min_seek_kib=-1)


class TestLongSeekDifference:
    def make(self, series_values, window_ops=2):
        recorder = WindowedSeekRecorder(window_ops=window_ops)
        recorder._counts = {i: v for i, v in enumerate(series_values) if v}
        recorder._max_window = len(series_values) - 1
        return recorder

    def test_difference(self):
        diff = long_seek_difference(self.make([3, 1]), self.make([1, 1]))
        assert diff == [2, 0]

    def test_length_mismatch_padded(self):
        diff = long_seek_difference(self.make([3, 1, 2]), self.make([1]))
        assert diff == [2, 1, 2]

    def test_window_mismatch_rejected(self):
        with pytest.raises(ValueError, match="window sizes differ"):
            long_seek_difference(self.make([1]), self.make([1], window_ops=5))
