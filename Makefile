# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test bench experiments charts lint-clean all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments all --out results/

charts:
	$(PYTHON) -m repro.experiments all --out results/ --svg charts/

lint-clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis

all: test bench experiments
