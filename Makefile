# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test smoke bench experiments charts lint-clean all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Crash-safety smoke: a tiny full run with failure isolation, then a
# resume of the same run (which must skip every exhibit).  See
# docs/ROBUSTNESS.md; the same contract runs in the test suite as
# tests/integration/test_smoke_resume.py.
smoke:
	$(PYTHON) -m repro.experiments all --scale 0.05 --out /tmp/smoke --keep-going
	$(PYTHON) -m repro.experiments all --scale 0.05 --out /tmp/smoke --keep-going --resume

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments all --out results/

charts:
	$(PYTHON) -m repro.experiments all --out results/ --svg charts/

lint-clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis

all: test bench experiments
