# Convenience targets for the repro project.

PYTHON ?= python

# Targets work from a bare checkout: the in-tree package wins over any
# installed copy.
export PYTHONPATH := src

# Optional tooling is detected, never required: the coverage floor only
# gates when pytest-cov is importable, and test-fast only parallelizes
# when pytest-xdist is.
COV_FLAGS := $(shell $(PYTHON) -c "import pytest_cov" 2>/dev/null && echo --cov=repro --cov-fail-under=85)
XDIST_FLAGS := $(shell $(PYTHON) -c "import xdist" 2>/dev/null && echo -n auto)

.PHONY: install test test-fast smoke serve-smoke serve-bench serve-bench-smoke bench bench-smoke bench-micro experiments charts lint-clean all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ $(COV_FLAGS)

# The same suite, wall-clock-optimized: differential oracle first (it
# guards the batch kernels everything else now rides on), then the rest,
# fanned out across cores when pytest-xdist is available.
test-fast:
	$(PYTHON) -m pytest tests/differential/ -q
	$(PYTHON) -m pytest tests/ -q $(XDIST_FLAGS)

# Crash-safety smoke: a tiny full run with failure isolation, then a
# resume of the same run (which must skip every exhibit).  See
# docs/ROBUSTNESS.md; the same contract runs in the test suite as
# tests/integration/test_smoke_resume.py.
smoke:
	$(PYTHON) -m repro.experiments all --scale 0.05 --out /tmp/smoke --keep-going
	$(PYTHON) -m repro.experiments all --scale 0.05 --out /tmp/smoke --keep-going --resume

# Service chaos smoke: boot the streaming daemon, stream three concurrent
# tenants (~10k ops total), SIGKILL one worker mid-stream and corrupt
# another's newest checkpoint, then assert every tenant's recovered stats
# equal an offline one-shot replay exactly and the shutdown is clean.
# The same run gates tier-1 via tests/test_serve_smoke.py (hard watchdog).
serve-smoke:
	$(PYTHON) -m repro serve-smoke

# Replay-kernel macro-benchmark + regression gate: writes BENCH_core.json
# and fails on >20% slowdown vs the checked-in BENCH_baseline.json or a
# batch-kernel speedup below 3x (see benchmarks/check_regression.py).
bench:
	$(PYTHON) benchmarks/bench_kernels.py --out benchmarks/BENCH_core.json
	$(PYTHON) benchmarks/check_regression.py benchmarks/BENCH_core.json
	$(PYTHON) benchmarks/check_regression.py --serving benchmarks/BENCH_serving.json

# Serving data-plane macro-benchmark + gate: two end-to-end runs at 1M
# ops (JSON-sequential reference vs binary+coalesced) plus the WAL
# group-commit micro, written to BENCH_serving.json and gated on 5x
# sustained throughput, a real group-commit win, and recorded p99/RSS
# (benchmarks/bench_serving.py, check_regression.py --serving).
serve-bench:
	$(PYTHON) benchmarks/bench_serving.py --out benchmarks/BENCH_serving.json
	$(PYTHON) benchmarks/check_regression.py --serving benchmarks/BENCH_serving.json

# The same harness at trivial scale, ungated: proves `repro load`, the
# daemon, both wires, and the report plumbing still run end to end in
# seconds (also exercised in tier-1 via tests/test_serve_bench_smoke.py).
serve-bench-smoke:
	$(PYTHON) benchmarks/bench_serving.py --ops 30000 --out /tmp/BENCH_serving_smoke.json

# Every macro-benchmark at ~10k ops, ungated: a seconds-long sanity pass
# that the harness itself still runs end to end (also exercised in tier-1
# via tests/test_bench_smoke.py).  Numbers at this scale are meaningless;
# nothing is compared against the baseline.
bench-smoke:
	$(PYTHON) benchmarks/bench_kernels.py --ops 10000 --no-runner --out /tmp/BENCH_smoke.json

# The original pytest-benchmark micro suite (per-exhibit + substrate).
bench-micro:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments all --out results/

charts:
	$(PYTHON) -m repro.experiments all --out results/ --svg charts/

lint-clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis

all: test bench experiments
