#!/usr/bin/env python3
"""The paper's §III thought experiment, built as a custom workload spec.

A database file receives small random updates, then is scanned
sequentially, repeatedly — the canonical log-sensitive pattern ("if the
file is read in its entirety N times, the net result will be an N-fold
seek amplification").  This example builds that workload from scratch with
:class:`WorkloadSpec`, shows the amplification growing with the scan share
of the read stream, and how each technique responds.

Run:  python examples/database_scan_workload.py
"""

from repro import (
    NOLS,
    PAPER_CONFIGS,
    build_translator,
    replay,
    seek_amplification,
)
from repro.workloads import ReadMix, WorkloadSpec, WriteMix, generate_workload


def database_spec(scans_weight: float) -> WorkloadSpec:
    """A 32 MiB database inside a 512 MiB volume: random overwrites, then
    sequential scans whose share of the read stream is ``scans_weight``."""
    return WorkloadSpec(
        name=f"dbscan-{scans_weight:.1f}",
        family="cloudphysics",
        total_ops=20_000,
        read_fraction=0.7,
        mean_read_kib=64.0,
        mean_write_kib=16.0,
        working_set_mib=512,
        hot_mib=32,
        write_mix=WriteMix(random=0.3, hot_overwrite=0.7),
        read_mix=ReadMix(scan=scans_weight, random=1.0 - scans_weight),
        overwrite_cluster=2,
        phases=4,
        write_phase_decay=0.4,
    )


def main() -> None:
    print("SAF vs share of reads that sequentially scan the database:\n")
    header = f"{'scan share':>10} | " + " | ".join(
        f"{c.name:>11}" for c in PAPER_CONFIGS
    )
    print(header)
    print("-" * len(header))
    for scans_weight in (0.0, 0.25, 0.5, 0.75, 0.95):
        trace = generate_workload(database_spec(max(scans_weight, 1e-9)), seed=7)
        baseline = replay(trace, build_translator(trace, NOLS))
        cells = []
        for config in PAPER_CONFIGS:
            result = replay(trace, build_translator(trace, config))
            saf = seek_amplification(result.stats, baseline.stats)
            cells.append(f"{saf.total:>11.2f}")
        print(f"{scans_weight:>10.2f} | " + " | ".join(cells))

    print(
        "\nReading: with no scans, amplification is mild (random reads\n"
        "occasionally straddle a fragment; random writes become\n"
        "sequential).  As scans take over the read stream, plain-LS SAF\n"
        "climbs steeply, while selective caching holds it near — and\n"
        "eventually below — the conventional drive: the database fits the\n"
        "64 MB cache once the first scan has warmed it."
    )


if __name__ == "__main__":
    main()
