#!/usr/bin/env python3
"""Ablations: tune each technique's knobs on the w91 archetype.

Sweeps the §IV-A defragmentation throttles (min fragments N, min accesses
k), the selective-cache size, and the prefetch window, reporting total SAF
for each setting — the design-choice ablations DESIGN.md calls out.

Run:  python examples/technique_tuning.py
"""

from repro import (
    NOLS,
    DefragConfig,
    PrefetchConfig,
    SelectiveCacheConfig,
    TechniqueConfig,
    build_translator,
    replay,
    seek_amplification,
    synthesize_workload,
)


def saf_for(trace, baseline, config: TechniqueConfig) -> float:
    result = replay(trace, build_translator(trace, config))
    return seek_amplification(result.stats, baseline.stats).total


def main() -> None:
    trace = synthesize_workload("w91", seed=42)
    baseline = replay(trace, build_translator(trace, NOLS))
    ls_saf = saf_for(trace, baseline, TechniqueConfig(name="LS"))
    print(f"w91 archetype, plain LS SAF = {ls_saf:.2f}\n")

    print("opportunistic defrag: min_fragments (N) x min_accesses (k)")
    for n in (2, 4, 8):
        row = []
        for k in (1, 2, 4):
            config = TechniqueConfig(
                name=f"defrag N={n} k={k}",
                defrag=DefragConfig(min_fragments=n, min_accesses=k),
            )
            row.append(f"k={k}: {saf_for(trace, baseline, config):5.2f}")
        print(f"  N={n}:  " + "   ".join(row))

    print("\nselective cache size sweep (paper uses 64 MB)")
    for mib in (4, 16, 64, 256):
        config = TechniqueConfig(
            name=f"cache {mib}MB",
            cache=SelectiveCacheConfig(capacity_mib=float(mib)),
        )
        print(f"  {mib:>4} MB: SAF {saf_for(trace, baseline, config):5.2f}")

    print("\nprefetch window sweep (look-behind = look-ahead)")
    for kib in (64, 128, 256, 512):
        config = TechniqueConfig(
            name=f"prefetch {kib}KB",
            prefetch=PrefetchConfig(behind_kib=float(kib), ahead_kib=float(kib)),
        )
        print(f"  {kib:>4} KB: SAF {saf_for(trace, baseline, config):5.2f}")

    print("\nall three techniques composed")
    combo = TechniqueConfig(
        name="LS+all",
        defrag=DefragConfig(min_fragments=4, min_accesses=2),
        prefetch=PrefetchConfig(),
        cache=SelectiveCacheConfig(),
    )
    print(f"  LS+defrag+prefetch+cache: SAF {saf_for(trace, baseline, combo):5.2f}")


if __name__ == "__main__":
    main()
