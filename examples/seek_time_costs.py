#!/usr/bin/env python3
"""Seek counts vs seek time: the §III cost structure, quantified.

The paper counts seeks but motivates them by cost: short backward hops
(missed rotations) cost a full platter revolution, short forward skips
almost nothing, long seeks head travel plus half a revolution.  This
example replays a workload under each configuration, weighs the resulting
seek logs with both the distance-bucketed SeekTimeModel and the exact
angular model, and reports the time amplification factor (TAF) next to
the paper's SAF — showing that prefetching looks *better* under time than
under counts (it specifically removes the most expensive hops).

Run:  python examples/seek_time_costs.py
"""

from repro import (
    NOLS,
    PAPER_CONFIGS,
    build_translator,
    replay,
    seek_amplification,
    synthesize_workload,
)
from repro.core.metrics import time_amplification
from repro.core.recorders import SeekLogRecorder
from repro.disk.angular import AngularSeekModel
from repro.disk.seek_time import SeekTimeModel


def main() -> None:
    trace = synthesize_workload("w95", seed=42)
    print(f"workload: {trace.name} ({len(trace)} ops; heavy mis-ordered writes)\n")

    baseline_rec = SeekLogRecorder()
    baseline = replay(trace, build_translator(trace, NOLS), [baseline_rec])
    model = SeekTimeModel()
    angular = AngularSeekModel()

    print(f"{'config':14} {'seeks':>7} {'SAF':>6} {'TAF':>6} "
          f"{'missed rotations':>17}")
    base_seeks = baseline.stats.total_seeks
    for config in PAPER_CONFIGS:
        recorder = SeekLogRecorder()
        result = replay(trace, build_translator(trace, config), [recorder])
        saf = seek_amplification(result.stats, baseline.stats).total
        taf = time_amplification(recorder.distances, baseline_rec.distances, model)
        missed = sum(
            1
            for d in recorder.distances
            if d < 0 and -d <= model.geometry.track_sectors
        )
        print(
            f"{config.name:14} {result.stats.total_seeks:>7} "
            f"{saf:>6.2f} {taf:>6.2f} {missed:>17}"
        )
    print(f"{'NoLS (base)':14} {base_seeks:>7} {1.0:>6.2f} {1.0:>6.2f}")

    print(
        f"\nmissed-rotation cost (exact angular model): "
        f"{angular.missed_rotation_ms():.1f} ms "
        f"vs {model.geometry.transfer_ms(100):.2f} ms for a short forward skip"
    )
    print(
        "\nReading: plain LS turns the mis-ordered write pattern into\n"
        "backward read hops, so its TAF exceeds its SAF; look-ahead-behind\n"
        "prefetching removes precisely those hops, making its advantage\n"
        "larger in time than in counts — the §IV-B argument, measured."
    )


if __name__ == "__main__":
    main()
