#!/usr/bin/env python3
"""Archival SMR store: log-structured translation vs media-cache STL.

The paper's closing argument (§I): archival systems accumulate data and
rarely modify it, so a log-structured translation layer never needs to
clean — and with the seek-reduction techniques, the SMR capacity advantage
comes with essentially no performance penalty.  The shipped alternative, a
media-cache STL, keeps data in LBA order but pays heavy cleaning traffic.

This example replays an accumulate-then-read archival workload through
both designs and reports seeks, write amplification, and estimated service
time from the §III seek-cost model.

Run:  python examples/archival_smr_store.py
"""

from repro import LS, LS_CACHE, NOLS, build_translator, replay
from repro.core.recorders import SeekLogRecorder
from repro.disk.media_cache import MediaCacheSTL
from repro.disk.seek_time import SeekTimeModel
from repro.workloads import ReadMix, WorkloadSpec, WriteMix, generate_workload


def archival_spec() -> WorkloadSpec:
    """Ingest-heavy early phases, read-heavy later phases (decay 0.25)."""
    return WorkloadSpec(
        name="archive",
        family="cloudphysics",
        total_ops=20_000,
        read_fraction=0.5,
        mean_read_kib=64.0,
        mean_write_kib=64.0,
        working_set_mib=512,
        hot_mib=48,
        write_mix=WriteMix(random=0.2, hot_overwrite=0.3, sequential=0.5),
        read_mix=ReadMix(scan=0.5, random=0.2, hot=0.2, replay=0.1),
        phases=6,
        write_phase_decay=0.25,
    )


def estimated_seek_ms(trace, config) -> float:
    recorder = SeekLogRecorder()
    replay(trace, build_translator(trace, config), [recorder])
    return SeekTimeModel().total_ms(recorder.distances)


def main() -> None:
    trace = generate_workload(archival_spec(), seed=11)
    print(f"archival workload: {len(trace)} ops, "
          f"{trace.write_count} writes then mostly reads\n")

    baseline = replay(trace, build_translator(trace, NOLS))
    ls = replay(trace, build_translator(trace, LS))
    cached = replay(trace, build_translator(trace, LS_CACHE))

    media_cache = MediaCacheSTL(data_sectors=trace.max_end, cache_mib=16)
    media_cache.replay(trace)

    print(f"{'design':28} {'total seeks':>11} {'WAF':>6}")
    print(f"{'conventional CMR (no SMR)':28} {baseline.stats.total_seeks:>11} {1.0:>6.2f}")
    print(f"{'media-cache STL':28} {media_cache.stats.total_seeks:>11} "
          f"{media_cache.stats.write_amplification:>6.2f}")
    print(f"{'log-structured STL':28} {ls.stats.total_seeks:>11} {1.0:>6.2f}")
    print(f"{'log-structured + 64MB cache':28} {cached.stats.total_seeks:>11} {1.0:>6.2f}")

    print(f"\nmedia-cache cleaning passes: {media_cache.stats.cleanings} "
          f"({media_cache.stats.cleaning_seeks} cleaning seeks)")

    print("\nestimated seek time (s), §III cost model:")
    for label, config in (("NoLS", NOLS), ("LS", LS), ("LS+cache", LS_CACHE)):
        print(f"  {label:10} {estimated_seek_ms(trace, config) / 1000:.2f}")

    print(
        "\nReading: the media-cache design avoids read-seek amplification\n"
        "but rewrites every byte at least twice (WAF ~2); the log-\n"
        "structured design never cleans, and with selective caching its\n"
        "seek count approaches (or beats) the conventional drive — the\n"
        "paper's 'SMR without the performance penalty' conclusion."
    )


if __name__ == "__main__":
    main()
