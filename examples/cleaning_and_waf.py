#!/usr/bin/env python3
"""Beyond the paper's infinite disk: cleaning cost on a finite log.

The paper evaluates on an infinite disk ("for archival workloads cleaning
may never be needed").  This example uses the finite-disk
:class:`ZonedCleaningTranslator` to show the other regime: an
overwrite-heavy workload on a log with limited spare capacity, where
write amplification and cleaning seeks grow sharply as over-provisioning
shrinks — and how the two seek metrics (SAF counting host seeks only, vs
SAF including cleaning traffic) diverge.

Run:  python examples/cleaning_and_waf.py
"""

from repro import NOLS, build_translator, replay
from repro.core.cleaning import ZonedCleaningTranslator
from repro.workloads import ReadMix, WorkloadSpec, WriteMix, generate_workload


def overwrite_workload():
    return generate_workload(
        WorkloadSpec(
            name="oltp-churn",
            family="cloudphysics",
            total_ops=12_000,
            read_fraction=0.3,
            mean_read_kib=16.0,
            mean_write_kib=16.0,
            working_set_mib=8,
            hot_mib=4,
            write_mix=WriteMix(random=0.4, hot_overwrite=0.6),
            read_mix=ReadMix(scan=0.5, random=0.5),
            phases=4,
        ),
        seed=5,
    )


def main() -> None:
    trace = overwrite_workload()
    baseline = replay(trace, build_translator(trace, NOLS))
    print(
        f"workload: {len(trace)} ops over an 8 MiB volume "
        f"({trace.write_count} writes, heavy overwrite churn)\n"
    )
    print(f"{'log capacity':>12} {'WAF':>6} {'cleanings':>9} "
          f"{'host SAF':>9} {'SAF incl. cleaning':>19}")
    for n_zones in (10, 12, 16, 24, 48):
        translator = ZonedCleaningTranslator(
            frontier_base=trace.max_end,
            zone_mib=1.0,
            n_zones=n_zones,
            reserve_zones=2,
        )
        stats = replay(trace, translator).stats
        cleaning = translator.cleaning_stats
        host_saf = stats.total_seeks / max(1, baseline.stats.total_seeks)
        full_saf = (stats.total_seeks + cleaning.cleaning_seeks) / max(
            1, baseline.stats.total_seeks
        )
        print(
            f"{n_zones:>9} MiB {cleaning.write_amplification:>6.2f} "
            f"{cleaning.cleanings:>9} {host_saf:>9.2f} {full_saf:>19.2f}"
        )
    print(
        "\nReading: with ~1.2x over-provisioning the translator spends more\n"
        "seeks cleaning than serving the host; at 6x the log behaves like\n"
        "the paper's infinite disk (WAF -> 1, cleaning seeks -> 0).  This\n"
        "is the overhead the paper's archival assumption removes, and why\n"
        "its seek-reduction techniques matter once cleaning is gone."
    )


if __name__ == "__main__":
    main()
