#!/usr/bin/env python3
"""Replay a real block trace file through the simulator.

Anyone with the SNIA MSR Cambridge download can point this at e.g.
``src2_2.csv`` and reproduce the paper on the genuine traces:

    python examples/replay_real_trace.py path/to/src2_2.csv --max-ops 500000

Without an argument, the example writes a small MSR-format file itself (a
random-write + sequential-scan pattern) so the parsing-and-replay flow is
demonstrable offline.
"""

import argparse
import random
import sys
import tempfile
from pathlib import Path

from repro import (
    NOLS,
    PAPER_CONFIGS,
    build_translator,
    replay,
    seek_amplification,
)
from repro.trace.msr import parse_msr_file

TICKS_PER_SECOND = 10_000_000
EPOCH = 128_166_372_000_000_000


def write_demo_msr_file(path: Path, n_ops: int = 4000) -> None:
    """Emit an MSR-format CSV: random 4 KB updates to a 64 MB file,
    followed by two sequential scans of it."""
    rng = random.Random(9)
    file_bytes = 64 * 1024 * 1024
    lines = []
    ticks = EPOCH
    for _ in range(n_ops // 2):
        offset = rng.randrange(0, file_bytes - 4096) // 4096 * 4096
        lines.append(f"{ticks},demo,0,Write,{offset},4096,500")
        ticks += TICKS_PER_SECOND // 1000
    scan_ops = n_ops // 4
    read_size = file_bytes // scan_ops
    for _ in range(2):
        for i in range(scan_ops):
            lines.append(f"{ticks},demo,0,Read,{i * read_size},{read_size},500")
            ticks += TICKS_PER_SECOND // 1000
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="MSR-format CSV trace file")
    parser.add_argument("--max-ops", type=int, default=None)
    parser.add_argument("--disk", type=int, default=None, help="disk number filter")
    parser.add_argument(
        "--policy",
        choices=("strict", "lenient", "quarantine"),
        default="lenient",
        help="malformed-record handling; real dumps are dirty, so the "
        "example defaults to lenient (see docs/ROBUSTNESS.md)",
    )
    args = parser.parse_args()

    if args.trace:
        path = Path(args.trace)
    else:
        path = Path(tempfile.mkdtemp()) / "demo_msr.csv"
        write_demo_msr_file(path)
        print(f"(no trace given: wrote demo MSR file to {path})")

    trace = parse_msr_file(
        path, disk_number=args.disk, max_ops=args.max_ops, policy=args.policy
    )
    if len(trace) == 0:
        sys.exit("trace is empty after filtering")
    print(f"parsed {len(trace)} ops from {path.name}: "
          f"{trace.read_count} reads / {trace.write_count} writes")
    report = trace.parse_report
    if report is not None and report.malformed:
        print(f"({report.malformed} malformed records dropped; "
              f"first: {report.errors[0].reason})")

    baseline = replay(trace, build_translator(trace, NOLS))
    print(f"\n{'config':14} {'SAF total':>9}")
    for config in PAPER_CONFIGS:
        result = replay(trace, build_translator(trace, config))
        saf = seek_amplification(result.stats, baseline.stats)
        print(f"{config.name:14} {saf.total:>9.2f}")


if __name__ == "__main__":
    main()
