#!/usr/bin/env python3
"""Quickstart: measure read-seek amplification on one workload.

Synthesizes the paper's worst-case CloudPhysics workload archetype (w91),
replays it through the conventional baseline and the log-structured
translator, then through each of the paper's three seek-reduction
techniques, and prints the seek amplification factors (Fig. 11 style).

Run:  python examples/quickstart.py
"""

from repro import (
    NOLS,
    PAPER_CONFIGS,
    build_translator,
    replay,
    seek_amplification,
    synthesize_workload,
)


def main() -> None:
    trace = synthesize_workload("w91", seed=42)
    print(f"workload: {trace.name}  ({len(trace)} ops, "
          f"{trace.read_count} reads / {trace.write_count} writes)")

    baseline = replay(trace, build_translator(trace, NOLS))
    print(f"\nconventional drive (NoLS): "
          f"{baseline.stats.read_seeks} read seeks, "
          f"{baseline.stats.write_seeks} write seeks")

    print(f"\n{'config':14} {'rd seeks':>9} {'wr seeks':>9} "
          f"{'SAF rd':>7} {'SAF wr':>7} {'SAF total':>9}")
    for config in PAPER_CONFIGS:
        result = replay(trace, build_translator(trace, config))
        saf = seek_amplification(result.stats, baseline.stats)
        print(
            f"{config.name:14} {result.stats.read_seeks:>9} "
            f"{result.stats.total_write_seeks:>9} "
            f"{saf.read:>7.2f} {saf.write:>7.2f} {saf.total:>9.2f}"
        )

    print(
        "\nReading: plain log-structuring amplifies total seeks (SAF > 1)\n"
        "because sequential scans traverse temporally-scattered data;\n"
        "translation-aware selective caching recovers (and beats) the\n"
        "conventional drive's seek behaviour."
    )


if __name__ == "__main__":
    main()
