"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation --no-use-pep517` takes the legacy
`setup.py develop` path, which works offline; all project metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
